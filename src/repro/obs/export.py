"""Trace exporters: JSONL (machine-readable) and Chrome ``trace_event``.

JSONL is the canonical on-disk format consumed by ``python -m repro
analyze``: a meta line followed by one compact, key-sorted JSON object per
event — byte-identical for identical (config, seed) regardless of worker
process, ``--jobs`` value, or cache state.

The Chrome format loads in Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``: one track (tid) per simulated CPU showing task
occupancy as complete ("X") events, instants for wakes / futex ops / BWD
activity, and counter ("C") tracks for virtually-blocked threads and
cumulative BWD deschedules.  Timestamps are microseconds (the format's
unit); durations under 1 us render as sub-unit slices.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.trace import TraceEvent, TraceRecorder

_COMPACT = {"sort_keys": True, "separators": (",", ":")}

#: Event kinds rendered as instant markers on their CPU's track.
_INSTANT_KINDS = frozenset({
    "wake", "preempt", "slice-expiry", "futex-wait", "futex-wake",
    "balance", "balance-scan", "idle-pull", "bwd-deschedule", "bwd-detect",
})


def write_jsonl(recorder: "TraceRecorder", path: str,
                meta: dict[str, Any] | None = None) -> int:
    """Write the ring buffer as JSONL; returns the event count."""
    head: dict[str, Any] = {
        "type": "meta",
        "events": len(recorder.events),
        "dropped": recorder.dropped,
        "capacity": recorder.capacity,
    }
    if meta:
        head.update(meta)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(head, **_COMPACT) + "\n")
        for e in recorder.events:
            fh.write(json.dumps(
                {"t": e.time, "kind": e.kind, "cpu": e.cpu,
                 "task": e.task, "detail": e.detail},
                **_COMPACT) + "\n")
    return len(recorder.events)


def _tid_name(cpu: int) -> str:
    return "kernel" if cpu < 0 else f"cpu {cpu}"


def chrome_trace(recorder: "TraceRecorder") -> list[dict[str, Any]]:
    """Build the ``traceEvents`` list for one recorder."""
    out: list[dict[str, Any]] = []
    cpus = sorted({e.cpu for e in recorder.events})
    for cpu in cpus:
        out.append({"ph": "M", "pid": 1, "tid": cpu, "name": "thread_name",
                    "args": {"name": _tid_name(cpu)}})
        out.append({"ph": "M", "pid": 1, "tid": cpu,
                    "name": "thread_sort_index",
                    "args": {"sort_index": cpu}})
    for span in recorder.run_spans():
        out.append({
            "ph": "X", "pid": 1, "tid": span.cpu, "cat": "run",
            "name": span.task or "?",
            "ts": span.start / 1000.0, "dur": span.duration / 1000.0,
            "args": {"end": span.end_kind},
        })
    for span in recorder.bwd_spans():
        out.append({
            "ph": "X", "pid": 1, "tid": span.cpu, "cat": "bwd-spin",
            "name": f"spin:{span.task or '?'}",
            "ts": span.start / 1000.0, "dur": span.duration / 1000.0,
            "args": dict(span.detail),
        })
    vb_blocked = 0
    bwd_total = 0
    for e in recorder.events:
        if e.kind in _INSTANT_KINDS:
            out.append({
                "ph": "i", "pid": 1, "tid": e.cpu, "s": "t",
                "name": e.kind, "cat": "sched", "ts": e.time / 1000.0,
                "args": {"task": e.task, **e.detail},
            })
        if e.kind == "park" and e.detail.get("how") == "vb":
            vb_blocked += 1
        elif e.kind == "wake" and e.detail.get("how") in ("vb", "vb-placed"):
            vb_blocked = max(0, vb_blocked - 1)
        elif e.kind != "bwd-deschedule":
            continue
        if e.kind == "bwd-deschedule":
            bwd_total += 1
            out.append({"ph": "C", "pid": 1, "name": "bwd-deschedules",
                        "ts": e.time / 1000.0,
                        "args": {"total": bwd_total}})
        else:
            out.append({"ph": "C", "pid": 1, "name": "vb-blocked",
                        "ts": e.time / 1000.0,
                        "args": {"threads": vb_blocked}})
    return out


def write_chrome(recorder: "TraceRecorder", path: str) -> int:
    """Write a Perfetto-loadable Chrome trace; returns the entry count."""
    events = chrome_trace(recorder)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                  fh, sort_keys=True, separators=(",", ":"))
    return len(events)


def write_artifacts(recorder: "TraceRecorder", base: str,
                    meta: dict[str, Any] | None = None) -> dict[str, str]:
    """Write the standard artifact pair next to ``base``.

    ``base`` ending in ``.csv`` keeps the legacy single-file CSV;
    otherwise ``<base>.jsonl`` + ``<base>.chrome.json`` are written
    (a trailing ``.jsonl`` on ``base`` is stripped first).
    """
    if base.endswith(".csv"):
        recorder.to_csv(base)
        return {"csv": base}
    if base.endswith(".jsonl"):
        base = base[: -len(".jsonl")]
    paths = {"jsonl": base + ".jsonl", "chrome": base + ".chrome.json"}
    write_jsonl(recorder, paths["jsonl"], meta)
    write_chrome(recorder, paths["chrome"])
    return paths
