"""Terminal timeline rendering: per-CPU utilization as an ASCII heatmap.

Each CPU is one row; time runs left to right, rebinned to the terminal
width.  Cell glyphs map [0, 1] utilization through a ten-level ramp::

    cpu  0 |@@@@%%##==--..    | 61.3%
"""

from __future__ import annotations

from typing import Sequence

LEVELS = " .:-=+*#%@"
DEFAULT_WIDTH = 64


def rebin(values: Sequence[float], width: int) -> list[float]:
    """Average ``values`` down (or pass through) to at most ``width`` bins."""
    n = len(values)
    if n == 0:
        return []
    if n <= width:
        return [float(v) for v in values]
    out = []
    for j in range(width):
        lo = j * n // width
        hi = max(lo + 1, (j + 1) * n // width)
        seg = values[lo:hi]
        out.append(sum(seg) / len(seg))
    return out


def heat_row(values: Sequence[float], width: int = DEFAULT_WIDTH) -> str:
    cells = rebin(values, width)
    top = len(LEVELS) - 1
    return "".join(
        LEVELS[max(0, min(top, int(v * len(LEVELS))))] for v in cells
    )


def render_util_timeline(
    util_by_cpu: dict[int, Sequence[float]],
    t0_ns: int,
    t1_ns: int,
    width: int = DEFAULT_WIDTH,
) -> str:
    """Multi-row heatmap of per-CPU utilization over [t0, t1]."""
    lines = [
        f"per-CPU utilization, {t0_ns / 1e6:.2f} .. {t1_ns / 1e6:.2f} ms "
        f"(each cell {'~' if width else ''}"
        f"{max(0, t1_ns - t0_ns) / max(1, width) / 1e3:.0f} us)"
    ]
    for cpu_id in sorted(util_by_cpu):
        series = util_by_cpu[cpu_id]
        mean = (sum(series) / len(series) * 100.0) if len(series) else 0.0
        lines.append(
            f"cpu {cpu_id:3d} |{heat_row(series, width)}| {mean:5.1f}%"
        )
    return "\n".join(lines)


def render_sampler(sampler, width: int = DEFAULT_WIDTH) -> str:
    """Timeline straight from a :class:`~repro.obs.sampler.Sampler`."""
    if not sampler.times:
        return "(no samples recorded)"
    online = set(sampler.kernel.online_cpus())
    util = {
        i: sampler.util[i]
        for i in range(len(sampler.util))
        if i in online or any(sampler.util[i])
    }
    t0 = sampler.times[0] - sampler.interval_ns
    body = render_util_timeline(util, max(0, t0), sampler.times[-1], width)
    spin = sum(sum(s) for s in sampler.spin)
    extra = (
        f"samples: {sampler.samples} x {sampler.interval_ns / 1e3:.0f} us"
        f"{' (truncated)' if sampler.truncated else ''}; "
        f"spinning-CPU samples: {spin}; "
        f"peak VB-blocked: {max(sampler.vb_blocked, default=0)}; "
        f"BWD deschedules: "
        f"{sampler.bwd_deschedules[-1] if sampler.bwd_deschedules else 0}"
    )
    return body + "\n" + extra
