"""Interval sampler: fixed-width time-series of scheduler state.

A self-rearming engine event reads — never mutates — per-CPU scheduler
state every ``interval_ns`` of *simulated* time: runqueue depth, interval
utilization, whether the running task is spinning, plus machine-wide VB
block counts, BWD deschedules, and migration-stall time.  Because the
callbacks are read-only and event ordering is insertion-stable, sampling
cannot perturb simulation results (asserted by tests/test_obs.py).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..kernel.task import RunMode, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel

#: Stop sampling past this many ticks — long runs keep the prefix rather
#: than growing without bound (``truncated`` records what was cut).
MAX_SAMPLES = 200_000


class Sampler:
    """Periodic read-only probe of one kernel's scheduler state."""

    def __init__(self, kernel: "Kernel", interval_ns: int,
                 max_samples: int = MAX_SAMPLES):
        if interval_ns < 1:
            raise ValueError("sample interval must be >= 1 ns")
        self.kernel = kernel
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        ncpus = len(kernel.cpus)
        self.times: list[int] = []
        self.depth: list[list[int]] = [[] for _ in range(ncpus)]
        self.util: list[list[float]] = [[] for _ in range(ncpus)]
        self.spin: list[list[int]] = [[] for _ in range(ncpus)]
        self.vb_blocked: list[int] = []
        self.bwd_deschedules: list[int] = []
        self.stall_delta_ns: list[int] = []
        self.psi_some_ns: list[int] = []
        self.psi_full_ns: list[int] = []
        self.truncated = 0
        self._prev_used = [0] * ncpus
        self._prev_stall = 0
        self._event = None
        self._t0 = 0

    def start(self) -> None:
        # Samples are anchored to the grid t0 + k*interval (rearming via
        # absolute times), so a long run keeps a stable cadence instead of
        # drifting off whatever time the previous tick happened to fire at.
        self._t0 = self.kernel.engine.now
        self._event = self.kernel.engine.schedule_at(
            self._t0 + self.interval_ns, self._tick)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        self._event = None
        k = self.kernel
        now = k.engine.now
        if len(self.times) >= self.max_samples:
            self.truncated += 1
            return  # stop rearming; the prefix is kept
        self.times.append(now)
        for i, cpu in enumerate(k.cpus):
            used = cpu.busy_ns + cpu.sched_ns + cpu.irq_ns + cpu.poll_ns
            curr = cpu.rq.curr
            if curr is not None and now > cpu.run_started:
                # In-flight busy time not yet folded by _sync_current.
                used += now - cpu.run_started
            delta = used - self._prev_used[i]
            self._prev_used[i] = used
            self.util[i].append(
                min(1.0, max(0.0, delta / self.interval_ns))
            )
            self.depth[i].append(cpu.rq.nr_running)
            self.spin[i].append(
                1 if (curr is not None and curr.mode is RunMode.SPIN) else 0
            )
        stall = sum(c.stall_ns for c in k.cpus)
        self.stall_delta_ns.append(stall - self._prev_stall)
        self._prev_stall = stall
        self.vb_blocked.append(
            sum(1 for t in k.tasks if t.state is TaskState.VBLOCKED)
        )
        self.bwd_deschedules.append(
            k.bwd.stats.deschedules if k.bwd is not None else 0
        )
        # PSI cumulative stall time, extended to ``now`` without flushing
        # the kernel's accounting (read-only, like everything above).
        # Exact even though the kernel only settles its clocks on
        # predicate flips: since ``_psi_last`` both predicates were
        # constant, so the extension is a straight line.
        some = k.psi_some_ns
        full = k.psi_full_ns
        if k.psi_waiting > 0:
            dt = now - k._psi_last
            if dt > 0:
                some += dt
                if k.psi_running == 0:
                    full += dt
        self.psi_some_ns.append(some)
        self.psi_full_ns.append(full)
        self._event = k.engine.schedule_at(
            self._t0 + (len(self.times) + 1) * self.interval_ns, self._tick)

    @property
    def samples(self) -> int:
        return len(self.times)

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval_ns": self.interval_ns,
            "samples": self.samples,
            "truncated": self.truncated,
            "t0_ns": self._t0,
            "times": list(self.times),
            "cpus": [
                {"id": i, "depth": self.depth[i], "util": self.util[i],
                 "spin": self.spin[i]}
                for i in range(len(self.util))
            ],
            "vb_blocked": list(self.vb_blocked),
            "bwd_deschedules": list(self.bwd_deschedules),
            "stall_delta_ns": list(self.stall_delta_ns),
            "psi_some_ns": list(self.psi_some_ns),
            "psi_full_ns": list(self.psi_full_ns),
        }
