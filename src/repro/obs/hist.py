"""Log2-bucketed latency histograms.

The kernel's latency probes (wakeup latency, futex block time, BWD
spin-to-deschedule) record into :class:`Log2Histogram`: O(1) per sample,
fixed memory regardless of run length, and mergeable across kernels — the
properties an always-on probe needs.  Bucket ``b`` holds values ``v`` with
``2**(b-1) <= v < 2**b`` (``v == 0`` lands in bucket 0), i.e. the bucket
index is ``int(v).bit_length()``.

Percentiles are nearest-rank over buckets, reported as the bucket's upper
bound clamped to the observed min/max — a conservative estimate whose
error is bounded by the bucket width (< 2x), which is plenty for the
p50/p95/p99 tables the report prints.
"""

from __future__ import annotations

import math
from typing import Any


class Log2Histogram:
    """Histogram of non-negative integer samples (nanoseconds)."""

    __slots__ = ("name", "counts", "count", "total", "min", "max")

    def __init__(self, name: str = ""):
        self.name = name
        self.counts: dict[int, int] = {}  # bucket exponent -> sample count
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    def record(self, value: int) -> None:
        v = int(value)
        if v < 0:
            v = 0
        b = v.bit_length()
        self.counts[b] = self.counts.get(b, 0) + 1
        if self.count == 0 or v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        self.count += 1
        self.total += v

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, resolved to the bucket upper bound."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile {pct} out of [0, 100]")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(pct / 100.0 * self.count))
        cum = 0
        for b in sorted(self.counts):
            cum += self.counts[b]
            if cum >= rank:
                hi = (1 << b) - 1 if b > 0 else 0
                return float(max(self.min, min(self.max, hi)))
        return float(self.max)  # pragma: no cover - rank <= count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, Any]:
        """JSON-pure summary attached to ``RunStats.extra``."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": float(self.min),
            "max": float(self.max),
        }

    def merge(self, other: "Log2Histogram") -> None:
        if not other.count:
            return
        for b, n in other.counts.items():
            self.counts[b] = self.counts.get(b, 0) + n
        if self.count == 0 or other.min < self.min:
            self.min = other.min
        self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(b): self.counts[b] for b in sorted(self.counts)},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Log2Histogram":
        h = cls(d.get("name", ""))
        h.count = int(d["count"])
        h.total = int(d["total"])
        h.min = int(d["min"])
        h.max = int(d["max"])
        h.counts = {int(b): int(n) for b, n in d["buckets"].items()}
        return h

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Log2Histogram {self.name} n={self.count} "
                f"p50={self.percentile(50):.0f} max={self.max}>")
