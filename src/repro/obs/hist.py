"""Log2-bucketed latency histograms.

The kernel's latency probes (wakeup latency, futex block time, BWD
spin-to-deschedule) record into :class:`Log2Histogram`: O(1) per sample,
fixed memory regardless of run length, and mergeable across kernels — the
properties an always-on probe needs.  Bucket ``b`` holds values ``v`` with
``2**(b-1) <= v < 2**b`` (``v == 0`` lands in bucket 0), i.e. the bucket
index is ``int(v).bit_length()``.

Samples are *batched*: ``record`` is a bare list append, and the bucket
and min/max/total accounting runs when the pending batch reaches
``_FLUSH_AT`` entries or any statistic is read.  Aggregation order does
not affect the result (sums and extrema commute), so batching changes
nothing observable — it only moves work off the simulator's hot path,
where a wakeup-heavy run records millions of samples.

Percentiles are nearest-rank over buckets, reported as the bucket's upper
bound clamped to the observed min/max — a conservative estimate whose
error is bounded by the bucket width (< 2x), which is plenty for the
p50/p95/p99 tables the report prints.
"""

from __future__ import annotations

import math
from typing import Any

# Pending samples per flush: large enough to amortize the loop, small
# enough that the batch stays in cache.
_FLUSH_AT = 512


class Log2Histogram:
    """Histogram of non-negative integer samples (nanoseconds)."""

    __slots__ = ("name", "_counts", "_count", "_total", "_min", "_max",
                 "_pending", "_negative_clamped")

    def __init__(self, name: str = ""):
        self.name = name
        self._counts: dict[int, int] = {}  # bucket exponent -> sample count
        self._count = 0
        self._total = 0
        self._min = 0
        self._max = 0
        self._pending: list[int] = []
        self._negative_clamped = 0

    def record(self, value: int) -> None:
        """Hot path: one list append; aggregation is deferred."""
        pending = self._pending
        pending.append(value)
        if len(pending) >= _FLUSH_AT:
            self._flush()

    def _flush(self) -> None:
        pending = self._pending
        if not pending:
            return
        counts = self._counts
        n = self._count
        total = self._total
        mn = self._min
        mx = self._max
        neg = 0
        for value in pending:
            v = int(value)
            if v < 0:
                # A negative duration is a probe bug or an injected clock
                # fault; ``(-5).bit_length() == 3`` would silently corrupt
                # a positive bucket, so clamp to 0 and keep the evidence.
                neg += 1
                v = 0
            b = v.bit_length()
            counts[b] = counts.get(b, 0) + 1
            if n == 0 or v < mn:
                mn = v
            if v > mx:
                mx = v
            n += 1
            total += v
        pending.clear()
        self._count = n
        self._total = total
        self._min = mn
        self._max = mx
        self._negative_clamped += neg

    # -- flushing accessors (the public read API) ----------------------
    @property
    def count(self) -> int:
        self._flush()
        return self._count

    @property
    def total(self) -> int:
        self._flush()
        return self._total

    @property
    def min(self) -> int:
        self._flush()
        return self._min

    @property
    def max(self) -> int:
        self._flush()
        return self._max

    @property
    def counts(self) -> dict[int, int]:
        self._flush()
        return self._counts

    @property
    def negative_clamped(self) -> int:
        """Samples that arrived negative and were clamped to bucket 0."""
        self._flush()
        return self._negative_clamped

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, resolved to the bucket upper bound."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile {pct} out of [0, 100]")
        self._flush()
        if not self._count:
            return 0.0
        rank = max(1, math.ceil(pct / 100.0 * self._count))
        cum = 0
        for b in sorted(self._counts):
            cum += self._counts[b]
            if cum >= rank:
                hi = (1 << b) - 1 if b > 0 else 0
                return float(max(self._min, min(self._max, hi)))
        return float(self._max)  # pragma: no cover - rank <= count

    @property
    def mean(self) -> float:
        self._flush()
        return self._total / self._count if self._count else 0.0

    def summary(self) -> dict[str, Any]:
        """JSON-pure summary attached to ``RunStats.extra``."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": float(self.min),
            "max": float(self.max),
        }

    def merge(self, other: "Log2Histogram") -> None:
        self._flush()
        other._flush()
        if not other._count:
            return
        counts = self._counts
        for b, n in other._counts.items():
            counts[b] = counts.get(b, 0) + n
        if self._count == 0 or other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        self._count += other._count
        self._total += other._total
        self._negative_clamped += other._negative_clamped

    def to_dict(self) -> dict[str, Any]:
        self._flush()
        d = {
            "name": self.name,
            "count": self._count,
            "total": self._total,
            "min": self._min,
            "max": self._max,
            "buckets": {str(b): self._counts[b]
                        for b in sorted(self._counts)},
        }
        if self._negative_clamped:
            d["negative_clamped"] = self._negative_clamped
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Log2Histogram":
        h = cls(d.get("name", ""))
        h._count = int(d["count"])
        h._total = int(d["total"])
        h._min = int(d["min"])
        h._max = int(d["max"])
        h._counts = {int(b): int(n) for b, n in d["buckets"].items()}
        h._negative_clamped = int(d.get("negative_clamped", 0))
        return h

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Log2Histogram {self.name} n={self.count} "
                f"p50={self.percentile(50):.0f} max={self.max}>")


def merge_histograms(
    *collections: dict[str, Log2Histogram],
) -> dict[str, Log2Histogram]:
    """Combine per-CPU (or per-kernel) histogram dicts into run-level
    ones, keyed by histogram name.  Inputs are flushed but not mutated;
    the result holds fresh instances, so exporters can snapshot it
    without racing pending batches."""
    out: dict[str, Log2Histogram] = {}
    for coll in collections:
        for name, h in coll.items():
            mine = out.get(name)
            if mine is None:
                mine = Log2Histogram(name)
                out[name] = mine
            mine.merge(h)
    return out
