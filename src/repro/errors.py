"""Exception hierarchy for the repro simulator.

All errors raised by the library derive from :class:`ReproError` so callers
can catch simulator failures without masking programming errors elsewhere.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state."""


class DeadlockError(SimulationError):
    """No runnable task exists and no future event can make one runnable."""

    def __init__(self, message: str, blocked_tasks: tuple[str, ...] = ()):
        super().__init__(message)
        self.blocked_tasks = blocked_tasks


class ProgramError(ReproError):
    """A simulated thread program yielded an invalid action."""


class TopologyError(ConfigError):
    """The requested hardware topology cannot be constructed."""
