"""Exception hierarchy for the repro simulator.

All errors raised by the library derive from :class:`ReproError` so callers
can catch simulator failures without masking programming errors elsewhere.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state."""


class DeadlockError(SimulationError):
    """No runnable task exists and no future event can make one runnable."""

    def __init__(self, message: str, blocked_tasks: tuple[str, ...] = ()):
        super().__init__(message)
        self.blocked_tasks = blocked_tasks


class InvariantViolation(SimulationError):
    """A kernel invariant check failed (see ``repro.chaos.invariants``).

    Carries enough structure to build a replay bundle: which invariant
    tripped, the simulated time and global event index at the failure
    point, and free-form details describing the offending state.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "",
        time_ns: int = 0,
        events_run: int = 0,
        details: dict | None = None,
    ):
        super().__init__(message)
        self.invariant = invariant
        self.time_ns = time_ns
        self.events_run = events_run
        self.details = details or {}


class SoftTimeoutError(ReproError, TimeoutError):
    """A wall-clock soft deadline expired while the engine was running.

    Raised by the event loop's deadline poll (``Engine.run``) as the
    portable fallback for platforms/threads without ``signal.SIGALRM``.
    Subclasses :class:`TimeoutError` so generic timeout handling catches
    it.
    """


class ProgramError(ReproError):
    """A simulated thread program yielded an invalid action."""


class TopologyError(ConfigError):
    """The requested hardware topology cannot be constructed."""
