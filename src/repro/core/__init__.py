"""The paper's contributions: virtual blocking and busy-waiting detection."""

from .virtual_blocking import VirtualBlockingPolicy
from .bwd import BwdMonitor, BwdStats

__all__ = ["VirtualBlockingPolicy", "BwdMonitor", "BwdStats"]
