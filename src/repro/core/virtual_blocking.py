"""Virtual blocking (VB) — Section 3.1.

VB emulates the *effect* of sleeping by skipping blocked threads in CPU
scheduling instead of moving them between sleep queues and runqueues:

* a ``thread_state`` flag on the task marks it blocked;
* the task stays on its CPU's runqueue, re-inserted at the tail with an
  arbitrarily large virtual runtime (``VB_SENTINEL``), so ``pick_next``
  never reaches it while any runnable task exists;
* waking clears the flag, restores the saved vruntime (with an
  immediate-schedule preference), and re-keys the task in place — no core
  selection, no cross-runqueue locking, no sleep/runnable load swings;
* if every task on a core is blocked, each briefly runs to poll its flag;
* VB turns itself off while the bucket's waiter count is below the online
  core count (all waiters could get a dedicated core on simultaneous
  wakeup, so the vanilla path is not a bottleneck).

The scheduling-side mechanics live in `repro.kernel.kernel`; this module
holds the policy decision and the counters the evaluation reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import VirtualBlockingConfig


@dataclass
class VbStats:
    vb_blocks: int = 0
    vanilla_blocks: int = 0
    vb_wakes: int = 0  # in-place wakes (oversubscribed bucket)
    vb_placed_wakes: int = 0  # wakes with core selection (VB disabled)
    vanilla_wakes: int = 0
    all_blocked_polls: int = 0
    disabled_undersubscribed: int = 0  # times the waiter<cores rule fired


class VirtualBlockingPolicy:
    """Holds the VB configuration, counters, and the disable rule."""

    def __init__(self, config: VirtualBlockingConfig):
        self.config = config
        self.stats = VbStats()

    def wake_in_place(self, bucket_waiters: int, online_cpus: int) -> bool:
        """The paper's disable rule, applied at wakeup: if the threads
        waiting on this bucket are fewer than the online cores, they can
        all get dedicated cores when woken simultaneously — so the wake
        selects cores like a traditional wakeup instead of re-keying the
        waiters in place."""
        if not self.config.enabled:
            return False
        if self.config.disable_when_undersubscribed and (
            bucket_waiters < online_cpus
        ):
            self.stats.disabled_undersubscribed += 1
            return False
        return True
