"""Busy-waiting detection (BWD) — Section 3.2.

A periodic monitor (the paper arms a 100 us hrtimer per core) inspects what
ran on each core during the last period and declares *spinning* when:

1. all 16 LBR entries are identical, backward branches, and
2. the PMCs recorded zero TLB misses and zero L1d misses.

Both records are cleared at each period, so only a task that spent the whole
window in a tight loop can match — the paper's profiling (3000 inst/us,
1 L1 miss / 45 inst, 1 TLB miss / 890 inst) makes ordinary code essentially
never match, while any spin implementation (PAUSE-based or ad-hoc) does.

On detection the spinning task is descheduled with a *skip* flag: it will
not run again until every other task on that core has been scheduled at
least once, letting critical threads (e.g. the preempted lock holder) run
sooner.

The monitor is software-only and mechanism-agnostic: it works natively, in
containers, and in VMs — unlike PLE/PF (`repro.hw.ple`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..config import BwdConfig, ProfilingConfig
from ..hw.lbr import synthesize_lbr_signature
from ..hw.pmc import synthesize_pmc_miss_free
from ..kernel.hrtimer import HrTimer
from ..kernel.task import RunMode, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.task import Task


class WindowKind(enum.Enum):
    """Ground truth of what a core did during a monitoring window."""

    IDLE = "idle"
    SPIN_FULL = "spin-full"  # one task, spinning for the entire window
    SPIN_PARTIAL = "spin-partial"  # spinning at window end, not throughout
    NORMAL = "normal"  # ordinary execution


@dataclass
class BwdStats:
    windows: int = 0
    spin_windows: int = 0  # ground-truth full-spin windows ("tries", Table 2)
    true_positives: int = 0
    nonspin_windows: int = 0  # ground-truth non-spin windows (Table 3)
    false_positives: int = 0
    deschedules: int = 0

    @property
    def sensitivity(self) -> float:
        return (
            self.true_positives / self.spin_windows if self.spin_windows else 0.0
        )

    @property
    def specificity(self) -> float:
        if not self.nonspin_windows:
            return 1.0
        return 1.0 - self.false_positives / self.nonspin_windows


class BwdMonitor:
    """The per-core LBR/PMC sampler and deschedule trigger."""

    def __init__(
        self,
        config: BwdConfig,
        profiling: ProfilingConfig,
        rng: np.random.Generator,
    ):
        self.config = config
        self.profiling = profiling
        self.rng = rng
        self.stats = BwdStats()
        self._timer: HrTimer | None = None
        self._kernel: "Kernel | None" = None

    def install(self, kernel: "Kernel") -> None:
        """Arm the monitoring timer on the kernel's engine.

        One engine timer walks every online core each period; behaviorally
        identical to the paper's per-core hrtimers, at a fraction of the
        event count.
        """
        self._kernel = kernel
        self._timer = HrTimer(
            kernel.engine, self.config.period_ns, self._tick, name="bwd"
        )
        self._timer.start()

    def uninstall(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def nudge_timer(self, delta_ns: int) -> bool:
        """Shift the monitor's next tick by ``delta_ns`` (chaos harness:
        hrtimer jitter racing slice expiry).  Returns False when no timer
        is armed."""
        if self._timer is None:
            return False
        return self._timer.nudge(delta_ns)

    # ------------------------------------------------------------------
    def _classify(self, task: "Task", window_start: int) -> WindowKind:
        if task.mode is RunMode.SPIN:
            ran_all_window = task.on_cpu_since <= window_start
            spun_all_window = task.mode_since <= window_start
            if ran_all_window and spun_all_window:
                return WindowKind.SPIN_FULL
            return WindowKind.SPIN_PARTIAL
        return WindowKind.NORMAL

    def _tick(self, now: int) -> None:
        kernel = self._kernel
        assert kernel is not None
        window_start = now - self.config.period_ns
        for cpu_id in kernel.online_cpus():
            task = kernel.current_task(cpu_id)
            self.stats.windows += 1
            # Reading LBRs/PMCs in the interrupt handler steals cycles from
            # whoever is running (the paper's <3% timer overhead).
            kernel.charge_irq(cpu_id, self.config.timer_overhead_ns)
            if task is None:
                continue
            kind = self._classify(task, window_start)
            if kind is WindowKind.SPIN_FULL:
                self.stats.spin_windows += 1
                # Boolean fast paths: same RNG draws as materializing the
                # LBR ring / PMC window, without the object churn (this
                # runs once per core per 100 us of simulated time).
                sig = synthesize_lbr_signature(
                    self.config.lbr_entries,
                    1.0,
                    task.spin_signature,
                    self.rng,
                    self.config.miss_probability,
                )
                miss_free = synthesize_pmc_miss_free(
                    self.config.period_ns, 1.0, self.profiling, self.rng
                )
                if sig and miss_free:
                    self.stats.true_positives += 1
                    if kernel.trace.enabled:
                        kernel.trace.emit(now, "bwd-detect", cpu_id,
                                          task.name, window=kind.value)
                    self._deschedule(cpu_id, task)
            elif kind is WindowKind.SPIN_PARTIAL:
                # The LBR shows the spin signature (last branches), but the
                # PMCs accumulated the pre-spin compute misses — cleared
                # records mean a partial spin is caught one period later.
                spin_ns = now - max(task.mode_since, task.on_cpu_since)
                spin_fraction = min(1.0, spin_ns / self.config.period_ns)
                miss_free = synthesize_pmc_miss_free(
                    self.config.period_ns,
                    spin_fraction,
                    self.profiling,
                    self.rng,
                    tight_loop_probability=task.profile.tight_loop_prob,
                    miss_rate_scale=task.profile.miss_rate_scale,
                )
                if miss_free:
                    # Counted as a detection but not toward sensitivity:
                    # ground truth here is ambiguous (it *is* spinning now).
                    if kernel.trace.enabled:
                        kernel.trace.emit(now, "bwd-detect", cpu_id,
                                          task.name, window=kind.value)
                    self._deschedule(cpu_id, task)
            else:
                self.stats.nonspin_windows += 1
                tight = (
                    task.profile.tight_loop_prob > 0.0
                    and self.rng.random() < task.profile.tight_loop_prob
                )
                sig = synthesize_lbr_signature(
                    self.config.lbr_entries,
                    1.0 if tight else 0.0,
                    task.spin_signature,
                    self.rng,
                    0.0,
                )
                miss_free = synthesize_pmc_miss_free(
                    self.config.period_ns,
                    1.0 if tight else 0.0,
                    self.profiling,
                    self.rng,
                    miss_rate_scale=task.profile.miss_rate_scale,
                )
                if sig and miss_free:
                    self.stats.false_positives += 1
                    if kernel.trace.enabled:
                        kernel.trace.emit(now, "bwd-detect", cpu_id,
                                          task.name, window="false-positive")
                    self._deschedule(cpu_id, task)

    def _deschedule(self, cpu_id: int, task: "Task") -> None:
        kernel = self._kernel
        assert kernel is not None
        if task.state is not TaskState.RUNNING:
            return
        self.stats.deschedules += 1
        task.stats.bwd_deschedules += 1
        kernel.bwd_deschedule(cpu_id, task, self.config.deschedule_cost_ns)
