"""Command-line interface: regenerate any of the paper's experiments.

Examples::

    python -m repro list
    python -m repro all --quick --jobs 4
    python -m repro fig01 --scale 0.5
    python -m repro fig12 --duration-ms 300
    python -m repro table2
    python -m repro suite streamcluster --threads 32 --cores 8 --optimized
    python -m repro ablations
    python -m repro validate --results results.json --strict
    python -m repro docs --check

The full command/flag reference (``docs/cli.md``) and the exit-code
table are generated from this module — see ``python -m repro docs`` and
:mod:`repro.exitcodes`.
"""

from __future__ import annotations

import argparse
import sys

from .config import optimized_config, vanilla_config
from .errors import ConfigError
from .exitcodes import (
    EXIT_CHAOS_VIOLATION,
    EXIT_FAILURE,
    EXIT_FIDELITY_VIOLATION,
    EXIT_OK,
    EXIT_USAGE,
)
from .runners import ablations as ab
from .runners import figures, format_table
from .workloads import SUITE, profile, run_suite_benchmark

KB = 1024
MB = 1024 * KB


def _add_scale(p: argparse.ArgumentParser, default: float = 0.5) -> None:
    p.add_argument("--scale", type=float, default=default,
                   help="workload scale (1.0 = full fidelity)")


def _add_seed(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=2021)


def cmd_list(_args) -> int:
    rows = [
        [p.name, p.suite, p.group.value, p.kind.value,
         f"{p.sync_interval_us:.0f}"]
        for p in SUITE.values()
    ]
    print(format_table(
        ["benchmark", "suite", "group", "sync", "interval (us)"], rows,
        title="modeled benchmarks",
    ))
    from .kernel.policy import POLICIES, available

    print(format_table(
        ["policy", "sched class", "description"],
        [[name, POLICIES[name].sched_class, POLICIES[name].description]
         for name in available()],
        title="scheduling policies (--policy; see docs/scheduling.md)",
    ))
    return 0


def cmd_fig01(args) -> int:
    rows = figures.fig01_overview(work_scale=args.scale, seed=args.seed)
    print(format_table(
        ["benchmark", "group", "32T/8T (sim)", "32T/8T (paper)"],
        [[r.name, r.group, r.ratio, r.paper_ratio] for r in rows],
        title="Figure 1",
    ))
    return 0


def cmd_fig02(args) -> int:
    rows, per_switch = figures.fig02_direct_cost(seed=args.seed)
    print(format_table(
        ["threads", "pure (norm)", "atomic (norm)"],
        [[r.nthreads, r.pure_normalized, r.atomic_normalized] for r in rows],
        title="Figure 2", float_fmt="{:.4f}",
    ))
    print(f"per-switch cost: {per_switch:.0f} ns (paper ~1500 ns)")
    return 0


def cmd_fig03(args) -> int:
    rows = figures.fig03_sync_intervals(work_scale=args.scale, seed=args.seed)
    print(format_table(
        ["bucket (us)", "# programs"], figures.fig03_histogram(rows),
        title="Figure 3",
    ))
    return 0


def cmd_fig04(_args) -> int:
    out = figures.fig04_indirect_cost()
    sizes = [s for s, _ in out["seq-r"]]
    print(format_table(
        ["size"] + list(out),
        [
            [f"{s // KB}KB" if s < MB else f"{s // MB}MB"]
            + [dict(out[p])[s] / 1000 for p in out]
            for s in sizes
        ],
        title="Figure 4 — indirect cost per context switch (us)",
        float_fmt="{:.1f}",
    ))
    return 0


def cmd_fig09(args) -> int:
    rows = figures.fig09_vb_applications(
        work_scale=args.scale, smt=args.smt, seed=args.seed
    )
    print(format_table(
        ["app", "32T/8T vanilla", "32T/8T optimized", "util 8T/32T/Opt",
         "migr 8T/32T/Opt"],
        [
            [r.name, r.vanilla_ratio, r.optimized_ratio,
             f"{r.util_8t:.0f}/{r.util_32t:.0f}/{r.util_opt:.0f}",
             f"{r.migr_in_8t + r.migr_cross_8t}/"
             f"{r.migr_in_32t + r.migr_cross_32t}/"
             f"{r.migr_in_opt + r.migr_cross_opt}"]
            for r in rows
        ],
        title="Figure 9 / Table 1",
    ))
    return 0


def cmd_fig10(args) -> int:
    part_a, part_b = figures.fig10_primitives(seed=args.seed)
    print(format_table(
        ["primitive", "threads", "speedup"],
        [[r.primitive, r.nthreads, r.speedup] for r in part_a],
        title="Figure 10(a) — one core",
    ))
    print(format_table(
        ["primitive", "cores", "speedup"],
        [[r.primitive, r.cores, r.speedup] for r in part_b],
        title="Figure 10(b) — 32 threads",
    ))
    return 0


def cmd_fig11(args) -> int:
    points = figures.fig11_elasticity(work_scale=args.scale, seed=args.seed)
    by = {}
    for p in points:
        by.setdefault(p.app, {})[(p.cores, p.setting)] = p.duration_ns
    for app, d in by.items():
        cores = sorted({c for c, _ in d})
        settings = ["#core-T(vanilla)", "8T(vanilla)", "32T(vanilla)",
                    "32T(pinned)", "32T(optimized)"]
        print(format_table(
            ["cores"] + settings,
            [
                [c] + [
                    "crash" if d[(c, s)] is None else f"{d[(c, s)] / 1e6:.1f}"
                    for s in settings
                ]
                for c in cores
            ],
            title=f"Figure 11 — {app} (ms)",
        ))
    return 0


def cmd_fig12(args) -> int:
    rows = figures.fig12_memcached(
        duration_ms=args.duration_ms, seed=args.seed
    )
    print(format_table(
        ["cores", "setting", "kops/s", "avg us", "p95 us", "p99 us"],
        [[r.cores, r.setting, r.throughput_ops / 1e3, r.latency.mean,
          r.latency.p95, r.latency.p99] for r in rows],
        title="Figure 12 — memcached", float_fmt="{:.1f}",
    ))
    return 0


def cmd_fig13(args) -> int:
    rows = figures.fig13_spinlocks(seed=args.seed)
    by = {}
    for r in rows:
        by.setdefault((r.environment, r.algorithm), {})[r.setting] = r.duration_ns
    for env in ("container", "kvm"):
        settings = ["8T(vanilla)", "32T(vanilla)"]
        if env == "kvm":
            settings.append("32T(PLE)")
        settings.append("32T(optimized)")
        print(format_table(
            ["lock"] + settings,
            [[alg] + [by[(env, alg)][s] / 1e6 for s in settings]
             for alg in figures.SPINLOCK_ORDER],
            title=f"Figure 13 — {env} (ms)", float_fmt="{:.1f}",
        ))
    return 0


def cmd_fig14(args) -> int:
    rows = figures.fig14_custom_spin(work_scale=args.scale, seed=args.seed)
    by = {}
    for r in rows:
        by.setdefault((r.app, r.environment), {})[(r.nthreads, r.setting)] = (
            r.duration_ns
        )
    for (app, env), d in by.items():
        print(format_table(
            ["threads", "vanilla", "PLE", "optimized"],
            [
                [n] + [
                    "n/a" if d.get((n, s)) is None else f"{d[(n, s)] / 1e6:.1f}"
                    for s in ("vanilla", "PLE", "optimized")
                ]
                for n in (8, 16, 32)
            ],
            title=f"Figure 14 — {app} ({env}) (ms)",
        ))
    return 0


def cmd_fig15(args) -> int:
    rows = figures.fig15_lock_comparison(work_scale=args.scale, seed=args.seed)
    by = {}
    for r in rows:
        by.setdefault(r.app, {})[r.lock] = r.duration_ns
    print(format_table(
        ["app", "pthread", "mutexee", "mcstp", "shfllock", "optimized"],
        [
            [app] + [d[k] / d["optimized"] for k in
                     ("pthread", "mutexee", "mcstp", "shfllock", "optimized")]
            for app, d in by.items()
        ],
        title="Figure 15 — normalized to optimized",
    ))
    return 0


def cmd_table2(args) -> int:
    results = figures.table2_true_positive(
        duration_ms=args.duration_ms, seed=args.seed
    )
    print(format_table(
        ["spinlock", "# tries", "# TPs", "sensitivity %"],
        [[r.algorithm, r.tries, r.true_positives, r.sensitivity * 100]
         for r in results],
        title="Table 2",
    ))
    return 0


def cmd_table3(args) -> int:
    results = figures.table3_false_positive(
        work_scale=args.scale, seed=args.seed
    )
    print(format_table(
        ["app", "# tries", "# FPs", "specificity %", "FP overhead %"],
        [[r.name, r.tries, r.false_positives, r.specificity * 100,
          r.overhead_pct] for r in results],
        title="Table 3",
    ))
    return 0


def cmd_all(args) -> int:
    from .runners.full_report import main_from_args

    return main_from_args(args)


def cmd_serve(args) -> int:
    from .runners.full_report import main_from_args

    if args.resilience or args.faults:
        return _serve_resilience_point(args)
    args.sections = ["serve"]
    return main_from_args(args)


def cmd_sched(args) -> int:
    from .runners.full_report import main_from_args

    args.sections = ["sched"]
    return main_from_args(args)


def _serve_resilience_point(args) -> int:
    """Ad-hoc overload run: one open-loop serving point under a
    resilience policy and/or a fault plan (``repro serve --resilience
    retry-budget --faults plan.json``).  Bad preset names and corrupt
    plan files raise ConfigError -> usage exit (2)."""
    import json as _json

    from .chaos import InjectionPlan
    from .runners.parallel import run_serving_open, vanilla_desc
    from .workloads.serving import SATURATION_RATE

    resilience = args.resilience
    if resilience and resilience.lstrip().startswith("{"):
        resilience = _json.loads(resilience)
    plan = InjectionPlan.load(args.faults).to_json() if args.faults else None
    dur, warm = (80.0, 10.0) if args.quick else (300.0, 30.0)
    rate = SATURATION_RATE * args.rate_frac
    print(f"serving point: rate {rate / 1e3:.0f} k/s "
          f"({args.rate_frac:g}x saturation), {dur:.0f} ms horizon, "
          f"resilience={args.resilience or 'off'}, "
          f"faults={args.faults or 'none'}")
    res = run_serving_open(
        vanilla_desc(4, args.seed), workers=8, rate=rate,
        duration_ms=dur, warmup_ms=warm,
        slo={"p99_target_us": 400.0, "p999_target_us": 2000.0,
             "window_ms": 10.0},
        resilience=resilience, faults=plan,
    )
    lat = res["latency"] or {}
    slo = res["slo"]
    print(f"goodput {res['goodput_ops'] / 1e3:.1f} k/s "
          f"(offered {res['offered_ops'] / 1e3:.1f}), "
          f"p99 {lat.get('p99', float('nan')):.0f} us, "
          f"p999 {lat.get('p999', float('nan')):.0f} us, "
          f"SLO {slo['violations']}/{slo['windows']} windows violated")
    resil = res.get("resilience")
    if resil:
        stats = {k: v for k, v in resil["stats"].items() if v}
        if stats:
            print("  " + ", ".join(f"{k}={v}"
                                   for k, v in sorted(stats.items())))
        client = resil.get("client")
        if client:
            print(f"  amplification {client['amplification']:.3f} "
                  f"({client['attempts']} attempts / "
                  f"{client['originals']} originals)")
        rec = resil.get("recovery")
        if rec:
            ttr = rec.get("time_to_recovery_ms")
            print("  time-to-recovery: "
                  + (f"{ttr:.1f} ms" if ttr is not None else "none "
                     "(no clean SLO window after the fault cleared)"))
    if args.results and args.results != "none":
        with open(args.results, "w", encoding="utf-8") as f:
            _json.dump(res, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.results}")
    return 0


def cmd_ablations(args) -> int:
    for rows, key in ((ab.vb_ablation(seed=args.seed), "full VB"),
                      (ab.bwd_ablation(seed=args.seed), "full BWD")):
        by = {}
        for r in rows:
            by.setdefault(r.workload, {})[r.variant] = r.duration_ns
        for wl, d in by.items():
            print(format_table(
                ["variant", "time (ms)", f"vs {key}"],
                [[v, t / 1e6, t / d[key]] for v, t in d.items()],
                title=f"{rows[0].mechanism.upper()} ablation — {wl}",
            ))
    return 0


def cmd_adapt(args) -> int:
    from .errors import SimulationError
    from .runners.adaptation import runtime_adaptation

    try:
        run = runtime_adaptation(
            args.setting, core_schedule=args.cores, seed=args.seed
        )
    except SimulationError as exc:
        print(f"crashed (as real pinned programs do): {exc}")
        return EXIT_FAILURE
    print(format_table(
        ["t (ms)", "cores", "phases/window", "utilization %"],
        [[w.t_start_ms, w.cores, w.phases_completed, w.utilization_pct]
         for w in run.windows],
        title=f"runtime adaptation — {run.setting}",
        float_fmt="{:.1f}",
    ))
    return 0


def _print_hists(extra: dict) -> None:
    hist_rows = [
        [key[len("hist:"):-len("_ns")], int(s["count"]), s["p50"] / 1e3,
         s["p95"] / 1e3, s["p99"] / 1e3, s["max"] / 1e3]
        for key, s in sorted(extra.items())
        if key.startswith("hist:")
    ]
    if hist_rows:
        print(format_table(
            ["metric", "n", "p50 (us)", "p95 (us)", "p99 (us)", "max (us)"],
            hist_rows, title="latency distributions", float_fmt="{:.1f}",
        ))


def cmd_npb(args) -> int:
    from .workloads.npb_omp import NpbOmpConfig, run_npb_omp

    cfg = (
        optimized_config(cores=args.cores, seed=args.seed)
        if args.optimized
        else vanilla_config(cores=args.cores, seed=args.seed)
    )

    def go():
        return run_npb_omp(args.kernel, args.threads, cfg, NpbOmpConfig())

    if args.trace:
        from .obs import observe
        from .obs.export import write_artifacts

        with observe() as session:
            r = go()
        paths = write_artifacts(
            session.recorder, args.trace,
            meta={"benchmark": f"npb/{args.kernel}",
                  "threads": args.threads, "seed": args.seed},
        )
    else:
        paths = {}
        r = go()
    print(f"{r.kernel} (OpenMP model): {r.nthreads} threads on "
          f"{r.cores} cores, {r.regions} parallel regions")
    print(f"  execution time   {r.duration_ns / 1e6:10.2f} ms")
    print(f"  barriers/blocks  {r.stats.blocks:10d}")
    print(f"  migrations       {r.stats.total_migrations:10d}")
    for kind, path in paths.items():
        print(f"  trace ({kind})    -> {path}")
    return 0


def cmd_suite(args) -> int:
    prof = profile(args.benchmark)
    cfg = (
        optimized_config(cores=args.cores, seed=args.seed)
        if args.optimized
        else vanilla_config(cores=args.cores, seed=args.seed)
    )

    def go():
        return run_suite_benchmark(
            prof, args.threads, cfg, work_scale=args.scale,
            pinned=args.pinned,
        )

    session = None
    if args.trace:
        from .obs import observe

        with observe(sample_interval_us=args.sample_interval_us) as session:
            run = go()
    else:
        run = go()
    s = run.stats
    print(f"{prof.name}: {args.threads} threads on {args.cores} cores "
          f"({'optimized' if args.optimized else 'vanilla'} kernel)")
    print(f"  execution time     {run.duration_ns / 1e6:10.2f} ms")
    print(f"  CPU utilization    {s.cpu_utilization_pct:10.1f} %·cpus")
    print(f"  context switches   {s.context_switches:10d}")
    print(f"  blocks / wakeups   {s.blocks:10d} / {s.wakeups}")
    print(f"  migrations         {s.total_migrations:10d} "
          f"({s.migrations_cross_node} cross-node)")
    print(f"  time spinning      {s.total_spin_ns / 1e6:10.2f} ms")
    if session is not None:
        from .obs.export import write_artifacts

        paths = write_artifacts(
            session.recorder, args.trace,
            meta={"benchmark": prof.name, "threads": args.threads,
                  "cores": args.cores, "seed": args.seed},
        )
        n = session.recorder.count()
        for kind, path in paths.items():
            print(f"  trace ({kind:6s})     {n:10d} events -> {path}")
        _print_hists(s.extra_dict)
        if session.samplers:
            from .obs.timeline import render_sampler

            print(render_sampler(session.samplers[0]))
    return 0


def _resolve_section_spec(args):
    """Select one ExperimentSpec of a figure/table section.

    Shared by ``repro trace`` / ``repro profile`` / ``repro top``.
    Returns ``(params, spec)``, or an int exit code (0 after ``--list``,
    2 on a bad section/spec selector).
    """
    from .runners.full_report import (
        ReportParams, SECTIONS, resolve_scale,
    )

    section = next((s for s in SECTIONS if s.key == args.section), None)
    if section is None:
        keys = ", ".join(s.key for s in SECTIONS)
        print(f"unknown section {args.section!r}; one of: {keys}",
              file=sys.stderr)
        return 2
    params = ReportParams(
        scale=resolve_scale(args.scale, args.quick, warn=sys.stderr),
        quick=args.quick, seed=args.seed,
    )
    specs = section.build(params)
    if args.list:
        for i, spec in enumerate(specs):
            print(f"{i:3d}  {spec.id}")
        return 0
    if args.spec_id is not None:
        spec = next((s for s in specs if s.id == args.spec_id), None)
        if spec is None:
            print(f"no spec {args.spec_id!r} in {args.section} "
                  f"(try --list)", file=sys.stderr)
            return 2
    else:
        if not 0 <= args.index < len(specs):
            print(f"--index {args.index} out of range "
                  f"(0..{len(specs) - 1})", file=sys.stderr)
            return 2
        spec = specs[args.index]
    return params, spec


def cmd_trace(args) -> int:
    from .obs import observe
    from .obs.export import write_artifacts
    from .obs.timeline import render_sampler
    from .runners.parallel import execute_spec

    resolved = _resolve_section_spec(args)
    if isinstance(resolved, int):
        return resolved
    params, spec = resolved

    print(f"tracing {spec.id} (scale {params.scale}, seed {spec.seed})")
    with observe(sample_interval_us=args.sample_interval_us,
                 capacity=args.capacity) as session:
        execute_spec(spec.payload(), timeout_s=None)
    rec = session.recorder
    paths = write_artifacts(
        rec, args.out,
        meta={"spec": spec.id, "seed": spec.seed, "scale": params.scale},
    )
    drop = f" ({rec.dropped} dropped)" if rec.dropped else ""
    print(f"{rec.count()} events{drop}")
    for kind, path in paths.items():
        print(f"  {kind:6s} -> {path}")
    _print_hists({f"hist:{name}": h.summary()
                  for name, h in session.hists.items() if h.count})
    if session.samplers:
        print(render_sampler(session.samplers[0]))
    return 0


def cmd_profile(args) -> int:
    from .obs import observe
    from .runners.parallel import execute_spec
    from .telemetry import folded_stacks, render_folded, write_folded

    resolved = _resolve_section_spec(args)
    if isinstance(resolved, int):
        return resolved
    params, spec = resolved

    print(f"profiling {spec.id} (scale {params.scale}, seed {spec.seed})",
          file=sys.stderr)
    with observe(capacity=args.capacity) as session:
        execute_spec(spec.payload(), timeout_s=None)
    rec = session.recorder
    if rec.dropped:
        print(f"warning: trace incomplete: {rec.dropped} events dropped — "
              f"the profile covers only the surviving suffix of the run",
              file=sys.stderr)
    folded = folded_stacks(rec)
    if args.out:
        n = write_folded(args.out, folded)
        print(f"{n} folded stacks -> {args.out} "
              f"(flamegraph.pl / speedscope 'folded' input)")
    else:
        print(render_folded(folded), end="")
    return 0


def cmd_top(args) -> int:
    from .obs import observe
    from .runners.parallel import execute_spec
    from .telemetry import render_top, session_telemetry

    resolved = _resolve_section_spec(args)
    if isinstance(resolved, int):
        return resolved
    params, spec = resolved

    print(f"sampling {spec.id} (scale {params.scale}, seed {spec.seed}, "
          f"every {args.sample_interval_us:g} us)", file=sys.stderr)
    with observe(sample_interval_us=args.sample_interval_us) as session:
        execute_spec(spec.payload(), timeout_s=None)
    telemetry = session_telemetry(session)
    if telemetry is None or not session.samplers:
        print("no kernel ran for this spec — nothing to show",
              file=sys.stderr)
        return EXIT_FAILURE
    primary = min(telemetry["primary"], len(session.samplers) - 1)
    print(render_top(
        session.samplers[primary].to_dict(),
        telemetry["snapshots"][telemetry["primary"]],
        frames=args.frames, width=args.width, top_n=args.top,
    ))
    return 0


def cmd_analyze(args) -> int:
    from .obs.analyze import analyze_file

    return analyze_file(args.trace, bins=args.bins)


def _chaos_workload(args) -> dict:
    from .runners.parallel import optimized_desc, vanilla_desc

    desc = (optimized_desc(args.cores, args.seed) if args.optimized
            else vanilla_desc(args.cores, args.seed))
    return {
        "runner": "suite_point",
        "params": {"name": args.benchmark, "nthreads": args.threads,
                   "config": desc, "work_scale": args.scale},
        "seed": args.seed,
    }


def _print_chaos_outcome(out) -> None:
    active = {k: v for k, v in out.stats.items() if v}
    print(f"faults applied: {out.stats.get('faults_applied', 0)}, "
          f"invariant checks: {out.invariant_checks}")
    if active:
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(active.items())))
    if out.violation is None:
        print(f"clean run (result sha256 {out.result_sha256[:16]}...)")
    else:
        v = out.violation
        print(f"FAILURE [{v.get('invariant')}]: {v.get('message')}")


def cmd_chaos_run(args) -> int:
    import dataclasses as dc

    from .chaos import InjectionPlan, make_bundle, random_plan, run_chaos_spec

    if args.plan:
        plan = InjectionPlan.load(args.plan)
    else:
        plan = random_plan(
            args.chaos_seed,
            duration_ns=int(args.duration_ms * 1e6),
            intensity=args.intensity,
        )
    if args.no_invariants:
        plan = dc.replace(plan, check_invariants=False)
    if args.horizon_ms is not None:
        plan = dc.replace(
            plan, progress_horizon_ns=int(args.horizon_ms * 1e6)
        )
    workload = _chaos_workload(args)
    print(f"chaos run: {args.benchmark} x{args.threads} on {args.cores} "
          f"cores, {len(plan.events)} fault(s), chaos seed {plan.seed}")
    out = run_chaos_spec(workload, plan)
    _print_chaos_outcome(out)
    if args.bundle or not out.ok:
        path = args.bundle or "chaos-bundle.json"
        make_bundle(workload, plan, out).save(path)
        print(f"replay bundle -> {path}"
              + ("" if out.ok else f"  (repro: repro chaos replay {path})"))
    return EXIT_OK if out.ok else EXIT_CHAOS_VIOLATION


def cmd_chaos_replay(args) -> int:
    from .chaos import ReplayBundle, replay_bundle

    bundle = ReplayBundle.load(args.bundle)
    want = (bundle.violation or {}).get("invariant", "clean")
    print(f"replaying {args.bundle}: recorded outcome {want!r}, "
          f"{len(bundle.plan.get('events', []))} fault(s)")
    outcome, reproduced, diffs = replay_bundle(bundle)
    _print_chaos_outcome(outcome)
    if reproduced:
        print("outcome REPRODUCED deterministically")
        return EXIT_OK
    print("outcome NOT reproduced:")
    for d in diffs:
        print(f"  {d}")
    return EXIT_FAILURE


def cmd_validate(args) -> int:
    import json

    from .validate import Results, evaluate
    from .validate.compare import Status
    from .validate.report import write_experiments_md

    try:
        results = Results.load(args.results)
    except FileNotFoundError:
        print(f"no results artifact at {args.results!r} — produce one "
              f"with `python -m repro all` or benchmarks/run_all.py",
              file=sys.stderr)
        return EXIT_FAILURE
    report = evaluate(results, quick_only=True if args.quick else None)

    style = {
        Status.MATCH: "ok", Status.DEVIATION: "DEVIATION",
        Status.VIOLATION: "VIOLATION", Status.MISSING: "MISSING",
        Status.SKIPPED: "skipped",
    }
    print(format_table(
        ["spec", "paper", "measured", "band", "status"],
        [
            [o.spec.id, o.spec.paper, o.measured_display,
             f"{o.spec.band_text()} {o.spec.unit}".rstrip(),
             style[o.status]]
            for o in report.outcomes
        ],
        title=f"fidelity validation — seed {report.seed}, "
              f"scale {report.scale:g}",
    ))
    counts = report.counts()
    print(f"{len(report.outcomes)} specs: {counts['MATCH']} match, "
          f"{counts['DEVIATION']} known deviations, "
          f"{counts['VIOLATION']} violations, {counts['MISSING']} missing, "
          f"{counts['SKIPPED']} skipped")
    for o in report.violations + report.by_status(Status.MISSING):
        print(f"  {style[o.status]} {o.spec.id}: {o.message}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report.as_dict(), f, indent=1, sort_keys=True)
        print(f"structured report -> {args.json}")
    if args.update_docs:
        write_experiments_md(results, args.docs)
        print(f"regenerated {args.docs} from "
              f"{args.results} (seed {report.seed}, scale {report.scale:g})")
    if report.failed(strict=args.strict):
        return EXIT_FIDELITY_VIOLATION
    return EXIT_OK


def cmd_docs(args) -> int:
    from .kernel.policy import update_policy_table
    from .validate.cli_docs import render_cli_md

    targets = [(args.out, render_cli_md(build_parser()))]
    sched_md = "docs/scheduling.md"
    try:
        with open(sched_md, encoding="utf-8") as f:
            # The guide is hand-written; only its policy comparison table
            # (between the BEGIN/END GENERATED markers) is regenerated
            # from the registry.
            targets.append((sched_md, update_policy_table(f.read())))
    except FileNotFoundError:
        pass
    rc = EXIT_OK
    for path, text in targets:
        try:
            with open(path, encoding="utf-8") as f:
                current = f.read()
        except FileNotFoundError:
            current = None
        if args.check:
            if current != text:
                print(f"{path} is stale — regenerate with "
                      f"`python -m repro docs`", file=sys.stderr)
                rc = EXIT_FAILURE
            else:
                print(f"{path} is up to date")
            continue
        with open(path, "w", encoding="utf-8", newline="\n") as f:
            f.write(text)
        print(f"wrote {path}")
    return rc


def cmd_chaos_plan(args) -> int:
    from .chaos import random_plan

    plan = random_plan(
        args.chaos_seed,
        duration_ns=int(args.duration_ms * 1e6),
        intensity=args.intensity,
    )
    plan.save(args.out)
    print(format_table(
        ["t (ms)", "fault", "params"],
        [[e.at_ns / 1e6, e.kind, str(e.params)] for e in plan.events],
        title=f"injection plan -> {args.out}", float_fmt="{:.2f}",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from the HPDC '21 thread-"
                    "oversubscription paper (simulated).",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the modeled benchmarks").set_defaults(
        fn=cmd_list
    )

    p = sub.add_parser(
        "all",
        help="regenerate every figure/table via the parallel cached runner",
    )
    from .runners.full_report import add_report_flags

    add_report_flags(p)
    p.set_defaults(fn=cmd_all)

    p = sub.add_parser(
        "serve",
        help="heavy-traffic serving scenarios: open-loop burst sweep, "
             "oversubscription-ratio sweep, closed loop, and multi-"
             "tenant colocation with per-tenant SLO tracking",
    )
    add_report_flags(p)
    p.add_argument("--resilience", default=None, metavar="PRESET",
                   help="overload-control policy for an ad-hoc open-loop "
                        "point: a preset name (repro.resilience.PRESETS) "
                        "or an inline JSON policy dict. Skips the section "
                        "sweep; see docs/resilience.md")
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="serving fault plan (worker-crash / "
                        "tenant-slowdown / conn-drop events) to inject "
                        "into the ad-hoc point")
    p.add_argument("--rate-frac", type=float, default=1.2,
                   metavar="FRAC", help="offered load as a fraction of "
                        "saturation for the ad-hoc point (default 1.2)")
    p.set_defaults(fn=cmd_serve, results="results-serve.json")

    p = sub.add_parser(
        "sched",
        help="compare scheduling policies (cfs / eevdf / fifo_rr) at 1x "
             "and 4x oversubscription; see docs/scheduling.md",
    )
    add_report_flags(p)
    p.set_defaults(fn=cmd_sched, results="results-sched.json")

    simple = {
        "fig01": (cmd_fig01, True), "fig02": (cmd_fig02, False),
        "fig03": (cmd_fig03, True), "fig04": (cmd_fig04, False),
        "fig10": (cmd_fig10, False), "fig11": (cmd_fig11, True),
        "fig13": (cmd_fig13, False), "fig14": (cmd_fig14, True),
        "fig15": (cmd_fig15, True), "table3": (cmd_table3, True),
        "ablations": (cmd_ablations, False),
    }
    for name, (fn, scaled) in simple.items():
        p = sub.add_parser(name, help=f"regenerate {name}")
        if scaled:
            _add_scale(p)
        _add_seed(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser("fig09", help="regenerate fig09 / table1")
    _add_scale(p)
    _add_seed(p)
    p.add_argument("--smt", action="store_true",
                   help="8 hyperthreads on 4 cores instead of 8 cores")
    p.set_defaults(fn=cmd_fig09)
    sub._name_parser_map["table1"] = p  # alias

    p = sub.add_parser("fig12", help="regenerate fig12 (memcached)")
    p.add_argument("--duration-ms", type=float, default=300.0)
    _add_seed(p)
    p.set_defaults(fn=cmd_fig12)

    p = sub.add_parser("table2", help="regenerate table2 (BWD sensitivity)")
    p.add_argument("--duration-ms", type=float, default=2000.0)
    _add_seed(p)
    p.set_defaults(fn=cmd_table2)

    p = sub.add_parser(
        "adapt", help="live CPU hot-plug under an oversubscribed workload"
    )
    p.add_argument("--setting", default="32T(optimized)",
                   choices=["8T(vanilla)", "32T(vanilla)", "32T(pinned)",
                            "32T(optimized)"])
    p.add_argument("--cores", type=int, nargs="+",
                   default=[8, 4, 2, 8, 16, 32, 8])
    _add_seed(p)
    p.set_defaults(fn=cmd_adapt)

    p = sub.add_parser(
        "npb", help="run an NPB kernel via its OpenMP region structure"
    )
    p.add_argument("kernel", choices=["ep", "cg", "mg", "is", "ft"])
    p.add_argument("--threads", type=int, default=32)
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--optimized", action="store_true")
    p.add_argument("--trace", metavar="BASE",
                   help="record a scheduling trace to BASE.jsonl + "
                        "BASE.chrome.json")
    _add_seed(p)
    p.set_defaults(fn=cmd_npb)

    p = sub.add_parser("suite", help="run one modeled benchmark")
    p.add_argument("benchmark", choices=sorted(SUITE))
    p.add_argument("--threads", type=int, default=32)
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--optimized", action="store_true")
    p.add_argument("--pinned", action="store_true")
    p.add_argument("--trace", metavar="BASE",
                   help="record a scheduling trace; BASE ending in .csv "
                        "writes the legacy CSV, anything else writes "
                        "BASE.jsonl + BASE.chrome.json")
    p.add_argument("--sample-interval-us", type=float, default=None,
                   metavar="US",
                   help="with --trace, sample per-CPU state at this period")
    _add_scale(p, default=1.0)
    _add_seed(p)
    p.set_defaults(fn=cmd_suite)

    def _add_section_spec_flags(sp: argparse.ArgumentParser,
                                verb: str) -> None:
        sp.add_argument("section",
                        help=f"figure/table key, e.g. fig01 (see `repro "
                             f"{verb} fig01 --list`)")
        sp.add_argument("--list", action="store_true",
                        help="list the section's experiment specs and exit")
        sp.add_argument("--index", type=int, default=0,
                        help=f"which spec of the section to {verb} "
                             f"(default 0)")
        sp.add_argument("--spec-id", default=None,
                        help="select the spec by id instead of --index")
        sp.add_argument("--quick", action="store_true",
                        help="use the quick workload scale")
        _add_scale(sp, default=None)
        _add_seed(sp)

    p = sub.add_parser(
        "trace",
        help="re-run one experiment of a figure/table with full "
             "observability and ship its trace artifacts",
    )
    _add_section_spec_flags(p, "trace")
    p.add_argument("--out", default="trace", metavar="BASE",
                   help="artifact base name (default 'trace' -> "
                        "trace.jsonl + trace.chrome.json)")
    p.add_argument("--sample-interval-us", type=float, default=100.0,
                   metavar="US",
                   help="interval-sampler period (default 100 us)")
    p.add_argument("--capacity", type=int, default=None,
                   help="trace ring-buffer capacity (events)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="re-run one experiment and fold its trace into on-/off-CPU "
             "stacks (flamegraph.pl / speedscope 'folded' input)",
    )
    _add_section_spec_flags(p, "profile")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the folded stacks here instead of stdout")
    p.add_argument("--capacity", type=int, default=None,
                   help="trace ring-buffer capacity (events)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "top",
        help="re-run one experiment and render a top-style replay: "
             "per-CPU utilization bars, runqueue depths, PSI pressure, "
             "and the top tasks by wait time",
    )
    _add_section_spec_flags(p, "top")
    p.add_argument("--sample-interval-us", type=float, default=100.0,
                   metavar="US",
                   help="sampling period of the replayed frames "
                        "(default 100 us)")
    p.add_argument("--frames", type=int, default=4,
                   help="number of frames across the run (default 4)")
    p.add_argument("--width", type=int, default=40,
                   help="utilization bar width (default 40)")
    p.add_argument("--top", type=int, default=8, metavar="N",
                   help="rows in the top-tasks table (default 8)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "analyze", help="summarize a JSONL trace produced by --trace/trace"
    )
    p.add_argument("trace", help="path to a .jsonl trace file")
    p.add_argument("--bins", type=int, default=64,
                   help="width of the utilization timeline (default 64)")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "chaos",
        help="fault injection + invariant checking (run / replay / plan)",
    )
    csub = p.add_subparsers(dest="chaos_command", required=True)

    def _chaos_plan_flags(cp) -> None:
        cp.add_argument("--chaos-seed", type=int, default=0,
                        help="seed for the generated injection plan")
        cp.add_argument("--intensity", default="medium",
                        choices=["light", "medium", "heavy"])
        cp.add_argument("--duration-ms", type=float, default=50.0,
                        help="simulated-time horizon faults are spread over")

    cp = csub.add_parser(
        "run", help="run one benchmark under an injection plan with "
                    "invariant checking; exit 3 on a violation",
    )
    cp.add_argument("--benchmark", default="fluidanimate",
                    choices=sorted(SUITE))
    cp.add_argument("--threads", type=int, default=32)
    cp.add_argument("--cores", type=int, default=8)
    cp.add_argument("--optimized", action="store_true")
    cp.add_argument("--plan", default=None, metavar="FILE",
                    help="load the injection plan from FILE instead of "
                         "generating one")
    _chaos_plan_flags(cp)
    cp.add_argument("--bundle", default=None, metavar="FILE",
                    help="always write a replay bundle here (on a "
                         "violation one is written regardless, default "
                         "chaos-bundle.json)")
    cp.add_argument("--no-invariants", action="store_true",
                    help="inject faults without the invariant checker")
    cp.add_argument("--horizon-ms", type=float, default=None,
                    help="no-progress horizon for the progress invariant")
    _add_scale(p=cp, default=0.2)
    _add_seed(cp)
    cp.set_defaults(fn=cmd_chaos_run)

    cp = csub.add_parser(
        "replay", help="re-run a replay bundle and verify the recorded "
                       "outcome reproduces; exit 1 if it does not",
    )
    cp.add_argument("bundle", help="path to a replay bundle JSON file")
    cp.set_defaults(fn=cmd_chaos_replay)

    cp = csub.add_parser("plan", help="generate a seeded injection plan")
    _chaos_plan_flags(cp)
    cp.add_argument("--out", default="chaos-plan.json", metavar="FILE")
    cp.set_defaults(fn=cmd_chaos_plan)

    p = sub.add_parser(
        "validate",
        help="check a results artifact against the paper's fidelity "
             "specs; exit 4 on a violation",
    )
    p.add_argument("--results", default="results.json", metavar="FILE",
                   help="results artifact from `repro all` / run_all.py "
                        "(default results.json)")
    p.add_argument("--update-docs", action="store_true",
                   help="regenerate EXPERIMENTS.md from the spec registry "
                        "plus this artifact")
    p.add_argument("--docs", default="EXPERIMENTS.md", metavar="FILE",
                   help="path written by --update-docs "
                        "(default EXPERIMENTS.md)")
    p.add_argument("--strict", action="store_true",
                   help="also exit 4 when a spec could not be evaluated "
                        "(missing/failed results)")
    p.add_argument("--quick", action="store_true",
                   help="evaluate only the quick-scale spec subset even "
                        "for a full-fidelity artifact")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the structured validation report here")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "docs",
        help="regenerate docs/cli.md from the argparse tree",
    )
    p.add_argument("--out", default="docs/cli.md", metavar="FILE",
                   help="output path (default docs/cli.md)")
    p.add_argument("--check", action="store_true",
                   help="verify the file matches instead of writing; "
                        "exit 1 on drift")
    p.set_defaults(fn=cmd_docs)

    # Every command that builds kernels honors the process-global hot
    # core selection (repro.fastpath) and the process-global scheduling
    # policy (repro.kernel.policy).  Parsing-only commands have nothing
    # to accelerate or schedule, and the chaos parent delegates to its
    # own subcommands below.
    from .fastpath import add_backend_argument
    from .kernel.policy import add_policy_argument

    backendless = {"list", "analyze", "validate", "docs", "chaos"}
    seen: set[int] = set()
    for name, sp in sub._name_parser_map.items():
        if name in backendless or id(sp) in seen:
            continue
        seen.add(id(sp))
        add_backend_argument(sp)
        add_policy_argument(sp)
    for name, cp in csub._name_parser_map.items():
        if name != "plan":
            add_backend_argument(cp)
            add_policy_argument(cp)

    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .fastpath import apply_backend_argument
    from .kernel.policy import apply_policy_argument

    apply_backend_argument(args)
    apply_policy_argument(args)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. ``python -m repro list | head``
        return 0
    except ConfigError as exc:
        # Unusable input (corrupt plan/bundle file, unknown preset, bad
        # policy dict): a structured one-liner, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
