"""Futex hash buckets (Figure 5).

The table maps a user-level synchronization object to a
:class:`FutexBucket` holding the ordered waiter queue and the bucket's
spinlock timeline.  Waiter-queue *order* is preserved under virtual
blocking too — the paper keeps the ``futex_hash_bucket`` queue precisely so
sleep/wakeup order is unchanged (Section 3.1); only the expensive
sleep-queue <-> runqueue shuttling is eliminated.

The sleep/wakeup *logic* (task parking, core selection, preemption checks)
lives in `repro.kernel.kernel`, which owns task state.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .locks import SimLockTimeline
from .task import Task


class FutexBucket:
    """One hash bucket: FIFO waiter queue + bucket lock timeline."""

    __slots__ = ("key", "waiters", "lock", "total_waits", "total_wakes")

    def __init__(self, key: int):
        self.key = key
        self.waiters: deque[Task] = deque()
        self.lock = SimLockTimeline(f"futex-bucket-{key}")
        self.total_waits = 0
        self.total_wakes = 0

    def __len__(self) -> int:
        return len(self.waiters)


class FutexTable:
    """All futex buckets, keyed by the identity of the user-level object.

    Real futexes hash the userspace address; identity of the primitive
    object is the faithful equivalent (one bucket per futex word, no
    aliasing — aliasing collisions are a real-kernel artifact the paper
    does not exercise).
    """

    def __init__(self) -> None:
        self._buckets: dict[int, FutexBucket] = {}

    def bucket(self, obj: Any) -> FutexBucket:
        key = id(obj)
        b = self._buckets.get(key)
        if b is None:
            b = FutexBucket(key)
            self._buckets[key] = b
        return b

    def waiter_count(self, obj: Any) -> int:
        b = self._buckets.get(id(obj))
        return len(b.waiters) if b else 0

    def buckets(self) -> list[FutexBucket]:
        return list(self._buckets.values())
