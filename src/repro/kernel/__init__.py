"""Simulated OS kernel: tasks, CFS scheduling, futex, epoll, load balancing."""

from .task import Task, TaskState, RunMode, ExecProfile, nice_to_weight
from .runqueue import CfsRunqueue, VB_SENTINEL
from .locks import SimLockTimeline
from .futex import FutexTable, FutexBucket
from .kernel import Kernel

__all__ = [
    "Task",
    "TaskState",
    "RunMode",
    "ExecProfile",
    "nice_to_weight",
    "CfsRunqueue",
    "VB_SENTINEL",
    "SimLockTimeline",
    "FutexTable",
    "FutexBucket",
    "Kernel",
]
