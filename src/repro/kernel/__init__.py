"""Simulated OS kernel: tasks, pluggable scheduling, futex, epoll,
load balancing.  Scheduling *policy* (pick order, placement, preemption,
slicing) lives in :mod:`repro.kernel.policy`; this package's kernel is
the shared mechanism every policy runs on."""

from .task import Task, TaskState, RunMode, ExecProfile, nice_to_weight
from .runqueue import CfsRunqueue, VB_SENTINEL
from .locks import SimLockTimeline
from .futex import FutexTable, FutexBucket
from .policy import SchedPolicy, available, current_policy, get_policy
from .kernel import Kernel

__all__ = [
    "Task",
    "TaskState",
    "RunMode",
    "ExecProfile",
    "nice_to_weight",
    "CfsRunqueue",
    "VB_SENTINEL",
    "SimLockTimeline",
    "FutexTable",
    "FutexBucket",
    "SchedPolicy",
    "available",
    "current_policy",
    "get_policy",
    "Kernel",
]
