"""High-resolution periodic timers (hrtimers).

BWD arms one per core at a 100 us period (Section 3.2).  A thin wrapper
over engine events that re-arms itself and supports cancellation.
"""

from __future__ import annotations

from typing import Callable

from ..sim.engine import Engine, EventHandle


class HrTimer:
    """A periodic timer delivering ``callback(now)`` every ``period_ns``."""

    def __init__(
        self,
        engine: Engine,
        period_ns: int,
        callback: Callable[[int], None],
        name: str = "hrtimer",
    ):
        if period_ns <= 0:
            raise ValueError("hrtimer period must be positive")
        self.engine = engine
        self.period_ns = period_ns
        self.callback = callback
        self.name = name
        self.fires = 0
        self._handle: EventHandle | None = None
        self._active = False

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self._arm()

    def _arm(self) -> None:
        self._handle = self.engine.schedule(self.period_ns, self._fire)

    def _fire(self) -> None:
        if not self._active:
            return
        self.fires += 1
        self.callback(self.engine.now)
        if self._active:
            self._arm()

    def nudge(self, delta_ns: int) -> bool:
        """Shift the next fire by ``delta_ns`` (may be negative, clamped to
        now).  Subsequent periods are unaffected.  Returns False when the
        timer is not armed.  Used by the chaos harness to model hrtimer
        jitter racing the scheduler."""
        if not self._active or self._handle is None:
            return False
        target = max(self.engine.now, self._handle.time + delta_ns)
        self._handle.cancel()
        self._handle = self.engine.schedule_at(target, self._fire)
        return True

    def cancel(self) -> None:
        self._active = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
