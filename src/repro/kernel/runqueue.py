"""Per-CPU CFS runqueue: a red-black tree ordered by virtual runtime.

Mirrors ``cfs_rq``: the currently running task is *not* in the tree; the
tree is keyed by ``(vruntime, enqueue_seq)``; ``min_vruntime`` advances
monotonically and places newly woken tasks.

Virtual blocking inserts blocked tasks at the tail using a sentinel key
component far above any real vruntime (the paper's "arbitrarily large
virtual runtime"), so ``pick_next`` naturally prefers every runnable task
and only reaches blocked ones when the whole queue is blocked.
"""

from __future__ import annotations

from ..util.rbtree import RedBlackTree
from .task import Task, TaskState

# An hour of virtual runtime: far beyond anything a real task accumulates.
VB_SENTINEL = 3_600_000_000_000


class CfsRunqueue:
    """One CPU's runqueue."""

    def __init__(self, cpu_id: int):
        self.cpu_id = cpu_id
        self.tree = RedBlackTree()
        self.curr: Task | None = None
        self.min_vruntime: int = 0
        self._seq = 0
        self.nr_enqueues = 0

    # ------------------------------------------------------------------
    # Size / load
    # ------------------------------------------------------------------
    @property
    def nr_queued(self) -> int:
        """Tasks waiting in the tree (including virtually blocked ones)."""
        return len(self.tree)

    @property
    def nr_running(self) -> int:
        """Linux's ``rq->nr_running``: queued + current.

        Virtually blocked tasks count — that stability is what kills the
        load fluctuation that triggers migration storms under vanilla
        blocking (Section 3.1 / Table 1).
        """
        return len(self.tree) + (1 if self.curr is not None else 0)

    def nr_schedulable(self) -> int:
        """Tasks that pick_next may actually run (excludes VB-blocked)."""
        n = sum(1 for _, t in self.tree.items() if t.thread_state == 0)
        if self.curr is not None and self.curr.thread_state == 0:
            n += 1
        return n

    # ------------------------------------------------------------------
    # Enqueue / dequeue
    # ------------------------------------------------------------------
    def _key_for(self, task: Task) -> tuple[int, int]:
        self._seq += 1
        if task.thread_state:
            return (VB_SENTINEL + self._seq, self._seq)
        return (task.vruntime, self._seq)

    def enqueue(self, task: Task) -> None:
        assert task.rq_key is None, f"{task} already queued"
        key = self._key_for(task)
        self.tree.insert(key, task)
        task.rq_key = key
        self.nr_enqueues += 1

    def dequeue(self, task: Task) -> None:
        assert task.rq_key is not None, f"{task} not queued"
        self.tree.remove(task.rq_key)
        task.rq_key = None

    def requeue(self, task: Task) -> None:
        """Re-insert with a key reflecting the task's current state."""
        self.dequeue(task)
        self.enqueue(task)

    # ------------------------------------------------------------------
    # Picking
    # ------------------------------------------------------------------
    def peek_next(self) -> Task | None:
        """Leftmost task; may be VB-blocked if every queued task is."""
        if not self.tree:
            return None
        _, task = self.tree.min_item()
        return task

    def pick_next(self) -> Task | None:
        """Remove and return the leftmost task."""
        if not self.tree:
            return None
        _, task = self.tree.pop_min()
        task.rq_key = None
        return task

    def update_min_vruntime(self) -> None:
        candidates = []
        if self.curr is not None and self.curr.thread_state == 0:
            candidates.append(self.curr.vruntime)
        if self.tree:
            key, task = self.tree.min_item()
            if task.thread_state == 0:
                candidates.append(key[0])
        if candidates:
            self.min_vruntime = max(self.min_vruntime, min(candidates))

    def place_vruntime(self, task: Task, sleeper_bonus_ns: int = 0) -> None:
        """CFS ``place_entity``: cap a sleeper's vruntime near the queue's
        min so it gets scheduled soon without starving the queue."""
        target = self.min_vruntime - sleeper_bonus_ns
        task.vruntime = max(task.vruntime, target)

    def tasks(self) -> list[Task]:
        return [t for _, t in self.tree.items()]

    def steal_candidates(self) -> list[Task]:
        """Queued tasks eligible for migration (never the current task;
        VB-blocked tasks are skipped in migration, per Section 3.1)."""
        return [
            t
            for _, t in self.tree.items()
            if t.thread_state == 0 and t.state is TaskState.RUNNABLE
        ]
