"""Per-CPU CFS runqueue: a red-black tree ordered by virtual runtime.

Mirrors ``cfs_rq``: the currently running task is *not* in the tree; the
tree is keyed by ``(vruntime, enqueue_seq)``; ``min_vruntime`` advances
monotonically and places newly woken tasks.

Virtual blocking inserts blocked tasks at the tail using a sentinel key
component far above any real vruntime (the paper's "arbitrarily large
virtual runtime"), so ``pick_next`` naturally prefers every runnable task
and only reaches blocked ones when the whole queue is blocked.

Hot-path accounting is incremental: the queue counts its VB-blocked
(sentinel-keyed) entries on enqueue/dequeue, so ``nr_schedulable()`` is
O(1) instead of a per-call tree scan, and the tree's cached leftmost node
makes ``peek_next``/``update_min_vruntime`` O(1).  This relies on an
invariant the kernel maintains: a queued task's key class (sentinel vs
real vruntime) always matches its ``thread_state`` at every point where
the queue is observed — VB wake paths re-key the task in the same
uninterruptible step that clears the flag.
"""

from __future__ import annotations

from typing import Iterator

from ..util.rbtree import RedBlackTree
from .task import Task, TaskState

# An hour of virtual runtime: far beyond anything a real task accumulates.
VB_SENTINEL = 3_600_000_000_000


class CfsRunqueue:
    """One CPU's runqueue."""

    def __init__(self, cpu_id: int):
        self.cpu_id = cpu_id
        self.tree = RedBlackTree()
        self.curr: Task | None = None
        self.min_vruntime: int = 0
        self._seq = 0
        self.nr_blocked = 0  # sentinel-keyed (VB-blocked) entries in tree
        self.nr_enqueues = 0
        # Non-CFS policies install their queue_key hook here; None keeps
        # the historical inlined vruntime keying (and its O(1) min path).
        self.key_fn = None

    # ------------------------------------------------------------------
    # Size / load
    # ------------------------------------------------------------------
    @property
    def nr_queued(self) -> int:
        """Tasks waiting in the tree (including virtually blocked ones)."""
        return self.tree.size

    @property
    def nr_running(self) -> int:
        """Linux's ``rq->nr_running``: queued + current.

        Virtually blocked tasks count — that stability is what kills the
        load fluctuation that triggers migration storms under vanilla
        blocking (Section 3.1 / Table 1).
        """
        return self.tree.size + (1 if self.curr is not None else 0)

    @property
    def nr_queued_runnable(self) -> int:
        """Queued tasks pick_next may actually run (excludes VB-blocked).
        O(1): the blocked population is counted on enqueue/dequeue."""
        return self.tree.size - self.nr_blocked

    def nr_schedulable(self) -> int:
        """Tasks that pick_next may actually run (excludes VB-blocked)."""
        n = self.tree.size - self.nr_blocked
        curr = self.curr
        if curr is not None and curr.thread_state == 0:
            n += 1
        return n

    def recount_blocked(self) -> int:
        """From-scratch count of sentinel-keyed entries — the ground truth
        behind the incremental ``nr_blocked`` counter.  O(n); used by the
        invariant checker and tests, never by the scheduler hot path."""
        return sum(1 for key in self.tree.keys() if key[0] >= VB_SENTINEL)

    # ------------------------------------------------------------------
    # Enqueue / dequeue
    # ------------------------------------------------------------------
    def _key_for(self, task: Task) -> tuple[int, int]:
        self._seq += 1
        if task.thread_state:
            return (VB_SENTINEL + self._seq, self._seq)
        kf = self.key_fn
        if kf is not None:
            return (kf(task), self._seq)
        return (task.vruntime, self._seq)

    def enqueue(self, task: Task) -> None:
        assert task.rq_key is None, f"{task} already queued"
        key = self._key_for(task)
        self.tree.insert(key, task)
        task.rq_key = key
        if key[0] >= VB_SENTINEL:
            self.nr_blocked += 1
        self.nr_enqueues += 1

    def dequeue(self, task: Task) -> None:
        key = task.rq_key
        assert key is not None, f"{task} not queued"
        self.tree.remove(key)
        task.rq_key = None
        if key[0] >= VB_SENTINEL:
            self.nr_blocked -= 1

    def requeue(self, task: Task) -> None:
        """Re-insert with a key reflecting the task's current state."""
        self.dequeue(task)
        self.enqueue(task)

    # ------------------------------------------------------------------
    # Picking
    # ------------------------------------------------------------------
    def peek_next(self) -> Task | None:
        """Leftmost task; may be VB-blocked if every queued task is."""
        tree = self.tree
        if tree.size == 0:
            return None
        return tree.min_value()

    def pick_next(self) -> Task | None:
        """Remove and return the leftmost task."""
        tree = self.tree
        if tree.size == 0:
            return None
        key, task = tree.pop_min()
        if key[0] >= VB_SENTINEL:
            self.nr_blocked -= 1
        task.rq_key = None
        return task

    def update_min_vruntime(self) -> None:
        """Advance ``min_vruntime`` monotonically toward the smallest
        runnable vruntime.  O(1): reads the cached leftmost key and skips
        the tree entirely when the leftmost entry is a VB sentinel (every
        queued task blocked) — no scan, no ``min_item`` descent."""
        curr = self.curr
        vr = None
        if curr is not None and curr.thread_state == 0:
            vr = curr.vruntime
        tree = self.tree
        if self.key_fn is None:
            if tree.size:
                key = tree.min_item()[0]
                k0 = key[0]
                if k0 < VB_SENTINEL and (vr is None or k0 < vr):
                    vr = k0
        else:
            # Policy keys are not vruntimes, so the leftmost key says
            # nothing about the vruntime floor — scan the live entries
            # (cold: only non-CFS policies take this branch).
            for t in tree.values():
                if t.thread_state == 0 and (vr is None or t.vruntime < vr):
                    vr = t.vruntime
        if vr is not None and vr > self.min_vruntime:
            self.min_vruntime = vr

    def place_vruntime(self, task: Task, sleeper_bonus_ns: int = 0) -> None:
        """CFS ``place_entity``: cap a sleeper's vruntime near the queue's
        min so it gets scheduled soon without starving the queue."""
        target = self.min_vruntime - sleeper_bonus_ns
        task.vruntime = max(task.vruntime, target)

    def tasks(self) -> Iterator[Task]:
        """Queued tasks in key order — a lazy iterator; callers that need
        a snapshot (e.g. to mutate while iterating) must list() it."""
        return self.tree.values()

    def steal_candidates(self) -> Iterator[Task]:
        """Queued tasks eligible for migration (never the current task;
        VB-blocked tasks are skipped in migration, per Section 3.1).
        Lazy: balance scans probe many queues and often need none or one
        item; use ``nr_queued_runnable`` for a pure existence check."""
        return (
            t
            for t in self.tree.values()
            if t.thread_state == 0 and t.state is TaskState.RUNNABLE
        )
