"""Fixed-priority FIFO with a round-robin slice (SCHED_RR-like).

The queue key is the static priority (``nice + 20``; lower sorts
first), with the runqueue's monotonic sequence number breaking ties —
so within a priority class the queue is FIFO by construction, and
re-enqueueing an expired task (which draws a fresh sequence number)
*is* the round-robin rotation.  Slices are a fixed quantum; wakeups
only preempt strictly lower-priority tasks; vruntime keeps advancing
(mechanism-side accounting) but never orders the queue.

VB parks land at the sentinel tail as under every policy, and a BWD
skip-flag push only touches vruntime, so a descheduled spinner simply
goes to the back of its priority class — the RR rotation the paper's
deschedule wants.
"""

from __future__ import annotations

from ..policy import SchedPolicy, register


@register
class FifoRrPolicy(SchedPolicy):
    name = "fifo_rr"
    sched_class = "fixed priority"
    description = "fixed-priority FIFO queues with a round-robin quantum"
    slice_model = "fixed quantum: `regular_slice`"
    preempt_rule = ("wakeup: strictly higher priority (lower nice); "
                    "tick: head priority at or above curr (RR in class)")

    @staticmethod
    def _prio(task) -> int:
        return task.nice + 20

    def queue_key(self, task) -> int:
        return self._prio(task)

    def expected_key(self, task) -> int | None:
        return self._prio(task)

    def place_wakeup(self, rq, task) -> None:
        # Priority is static; a woken task just joins its class's tail.
        pass

    def check_preempt(self, curr, woken) -> bool:
        return self._prio(woken) < self._prio(curr)

    def tick_preempt(self, rq, curr) -> bool:
        head = rq.peek_next()
        return (head is not None and not head.thread_state
                and self._prio(head) <= self._prio(curr))

    def slice_ns(self, nr_schedulable: int) -> int:
        return self.sched.regular_slice_ns
