"""EEVDF: earliest-eligible-virtual-deadline-first.

The discipline that replaced CFS pick-next in Linux 6.6: each task
carries a *virtual deadline* — its vruntime plus one weighted slice —
renewed whenever its vruntime catches up to it.  The runqueue orders
by deadline; pick-next takes the earliest-deadline task that is
*eligible* (non-negative lag, i.e. its vruntime is at or behind the
queue average), falling back to the earliest deadline outright so the
CPU never idles while work is queued.

VB/BWD interplay: parked tasks sort at the sentinel tail exactly as
under CFS (the runqueue keys them before the policy is consulted), and
a BWD skip-flag push advances vruntime past every queued runnable,
which both delays eligibility and forces a deadline renewal on the
next enqueue — the mechanisms need nothing policy-specific.
"""

from __future__ import annotations

from ..policy import SchedPolicy, register
from ..task import NICE_0_WEIGHT


@register
class EevdfPolicy(SchedPolicy):
    name = "eevdf"
    sched_class = "fair (deadline-ordered)"
    description = "eligible virtual-deadline-first with lag accounting"
    slice_model = ("CFS-style slice; virtual deadline = `vruntime + "
                   "regular_slice * 1024 / weight`, renewed on expiry")
    preempt_rule = ("wakeup: earlier virtual deadline than curr; "
                    "tick: reschedule whenever a runnable is queued")

    def _vslice(self, task) -> int:
        return self.sched.regular_slice_ns * NICE_0_WEIGHT // task.weight

    def _deadline(self, task) -> int:
        """Effective deadline without mutating ``task`` (pure)."""
        dl = getattr(task, "deadline", None)
        if dl is None or task.vruntime >= dl:
            return task.vruntime + self._vslice(task)
        return dl

    def queue_key(self, task) -> int:
        dl = getattr(task, "deadline", None)
        if dl is None or task.vruntime >= dl:
            task.deadline = dl = task.vruntime + self._vslice(task)
        return dl

    def expected_key(self, task) -> int | None:
        # queue_key stored the exact key it returned; a queued task's
        # deadline is only ever rewritten by its next enqueue.
        return getattr(task, "deadline", None)

    def pick_next(self, rq):
        runnable = [t for t in rq.tasks() if not t.thread_state]
        if not runnable:  # pragma: no cover - kernel handles all-parked
            return rq.pick_next()
        # Lag >= 0 means the task has received no more than its fair
        # share: vruntime at or behind the queue average.
        avg = sum(t.vruntime for t in runnable) // len(runnable)
        task = next((t for t in runnable if t.vruntime <= avg), runnable[0])
        rq.dequeue(task)
        return task

    def place_wakeup(self, rq, task) -> None:
        rq.place_vruntime(task, self.sched.sched_latency_ns // 2)
        task.deadline = None  # fresh deadline from the placed vruntime

    def check_preempt(self, curr, woken) -> bool:
        return self._deadline(woken) < self._deadline(curr)

    def tick_preempt(self, rq, curr) -> bool:
        # A full slice ran: hand the decision back to pick_next, which
        # re-sorts curr by its (possibly renewed) deadline.
        return rq.nr_queued_runnable > 0
