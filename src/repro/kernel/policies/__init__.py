"""Built-in scheduling policies.

Importing this package populates ``repro.kernel.policy.POLICIES``;
each module registers its class with the ``@register`` decorator.
Third-party policies only need to subclass
:class:`~repro.kernel.policy.SchedPolicy` and register — see
``docs/scheduling.md`` for the write-a-policy walkthrough.
"""

from .cfs import CfsPolicy
from .eevdf import EevdfPolicy
from .fifo_rr import FifoRrPolicy

__all__ = ["CfsPolicy", "EevdfPolicy", "FifoRrPolicy"]
