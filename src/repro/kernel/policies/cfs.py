"""CFS: the default policy, bit-identical to the historical kernel.

The hook bodies here restate the expressions that used to be inlined
in ``kernel/kernel.py``; with ``inline_fast_path = True`` the kernel
keeps running those original inlined forms (and the C ``KernelCycle``
stays eligible), so the digests cannot move.  The hooks still matter:
they are what the invariant checker, the conformance tests, and the
policy-author guide treat as the reference semantics, and
``tests/test_policy.py`` proves the hook path and the inlined path
produce identical simulations.
"""

from __future__ import annotations

from ..policy import SchedPolicy, register


@register
class CfsPolicy(SchedPolicy):
    name = "cfs"
    sched_class = "fair"
    description = "weighted fair queueing on vruntime (the paper's baseline)"
    slice_model = ("`sched_latency / nr_schedulable` clamped to "
                   "[`min_granularity`, `regular_slice`]")
    preempt_rule = ("wakeup: `curr.vruntime - woken.vruntime > "
                    "wakeup_granularity`; tick: any queued runnable")
    inline_fast_path = True

    # Every hook is the SchedPolicy default: the base class *is* CFS so
    # that a policy overriding nothing is already valid.  Listed
    # explicitly anyway so this file reads as the reference policy.

    def queue_key(self, task) -> int:
        return task.vruntime

    def expected_key(self, task) -> int | None:
        return task.vruntime
