"""task_struct equivalent: per-thread kernel state and statistics."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Generator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..prog.actions import Action


class TaskState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"  # on a runqueue, not running
    RUNNING = "running"  # current on some CPU
    SLEEPING = "sleeping"  # off the runqueue (vanilla blocking)
    VBLOCKED = "vblocked"  # virtually blocked: on the runqueue, skipped
    EXITED = "exited"


class RunMode(enum.Enum):
    """What a RUNNING task's cycles are doing (drives LBR/PMC synthesis)."""

    COMPUTE = "compute"
    SPIN = "spin"
    VB_POLL = "vb-poll"  # briefly polling thread_state when all are blocked


@dataclass
class ExecProfile:
    """Micro-architectural character of a task's compute phases.

    ``tight_loop_prob`` — probability that a 100 us monitoring window of
    compute consists of a tight, cache-resident loop with no L1/TLB misses
    (BWD's false-positive source, Table 3).
    ``miss_rate_scale`` — multiplier on the paper's profiled miss rates.
    ``spin_uses_pause`` — whether this program's spin loops execute PAUSE
    (visible to PLE) or are plain load-compare loops (invisible, e.g. NPB lu).
    """

    tight_loop_prob: float = 0.0
    miss_rate_scale: float = 1.0
    spin_uses_pause: bool = True
    # Multiplier on migration cache-refill penalties: ~1 for cache-light
    # code, larger for multi-MB working sets (Figure 4's refill arithmetic).
    migration_weight: float = 1.0


@dataclass
class TaskStats:
    cpu_ns: int = 0  # time on CPU making progress
    spin_ns: int = 0  # time on CPU spinning
    wait_ns: int = 0  # runnable but not running
    sleep_ns: int = 0  # blocked (real or virtual)
    nr_switches: int = 0
    nr_voluntary: int = 0
    nr_involuntary: int = 0
    nr_migrations_in_node: int = 0
    nr_migrations_cross_node: int = 0
    nr_wakeups: int = 0
    nr_blocks: int = 0
    nr_slice_expiries: int = 0  # timeslice ran out (renewed or preempted)
    nr_futex_waits: int = 0
    bwd_deschedules: int = 0
    wakeup_latency_ns: int = 0  # sum over wakeups: wake -> running

    @property
    def total_migrations(self) -> int:
        return self.nr_migrations_in_node + self.nr_migrations_cross_node


# CFS nice-to-weight table (kernel/sched/core.c sched_prio_to_weight),
# nice -20 .. +19; weight 1024 is nice 0.
NICE_0_WEIGHT = 1024
_PRIO_TO_WEIGHT = [
    88761, 71755, 56483, 46273, 36291,
    29154, 23254, 18705, 14949, 11916,
    9548, 7620, 6100, 4904, 3906,
    3121, 2501, 1991, 1586, 1277,
    1024, 820, 655, 526, 423,
    335, 272, 215, 172, 137,
    110, 87, 70, 56, 45,
    36, 29, 23, 18, 15,
]


def nice_to_weight(nice: int) -> int:
    if not -20 <= nice <= 19:
        raise ValueError(f"nice value {nice} out of [-20, 19]")
    return _PRIO_TO_WEIGHT[nice + 20]


class Task:
    """A simulated kernel thread bound to a generator program."""

    _next_tid = [1]

    def __init__(
        self,
        name: str,
        program: Generator["Action", Any, None],
        profile: ExecProfile | None = None,
        nice: int = 0,
    ):
        self.tid = Task._next_tid[0]
        Task._next_tid[0] += 1
        self.name = name
        self.program = program
        self.profile = profile or ExecProfile()

        self.nice = nice
        self.weight = nice_to_weight(nice)
        self.state = TaskState.NEW
        self.mode = RunMode.COMPUTE
        self.cpu: int | None = None  # CPU currently running on
        self.last_cpu: int | None = None  # last CPU it ran on
        self.vruntime: int = 0
        self.saved_vruntime: int | None = None  # stashed during VB
        self.rq_key: tuple | None = None  # key in the runqueue tree, if queued

        # Virtual blocking flag (the paper's thread_state) and BWD skip flag.
        self.thread_state: int = 0
        self.skip_flag: bool = False

        # Current action being executed and its remaining on-CPU time.
        self.action: "Action | None" = None
        self.action_remaining: int = 0
        # Result to feed into the generator when the action completes.
        self.pending_result: Any = None
        # Set when a blocking action's outcome arrived while parked.
        self.wake_completed: bool = False

        # How the task parked ("sleep" vanilla / "vb" virtual), if blocking.
        self.block_kind: str | None = None
        # A wake arrived while the task was still in its pre-park window.
        self.wake_pending: bool = False
        # The pending wake is a 1:1 handoff (wake_affine sync hint).
        self.sync_wake: bool = False
        # CPU affinity (Figure 11's pinning baseline) and VB home queue.
        self.pinned_cpu: int | None = None
        self.vb_cpu: int = 0

        # Penalty charged on next dispatch (migration cache refill).
        self.pending_penalty_ns: int = 0
        # Timestamps for state accounting.
        self.state_since: int = 0
        self.mode_since: int = 0
        self.on_cpu_since: int = 0
        self.woken_at: int | None = None

        # What the task is spinning on, if mode is SPIN.
        self.spin_target: Any = None
        self.spin_signature: int = self.tid * 0x1000 + 0x400000

        self.stats = TaskStats()
        self.exited_at: int | None = None
        self.exit_error: BaseException | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.tid} {self.name!r} {self.state.value}>"

    @property
    def alive(self) -> bool:
        return self.state is not TaskState.EXITED

    @property
    def on_rq(self) -> bool:
        return self.rq_key is not None

    def account_state(self, now: int) -> None:
        """Fold the time since the last state change into the stats."""
        elapsed = now - self.state_since
        if elapsed <= 0:
            self.state_since = now
            return
        if self.state is TaskState.RUNNING:
            if self.mode is RunMode.COMPUTE:
                self.stats.cpu_ns += elapsed
            else:
                self.stats.spin_ns += elapsed
        elif self.state is TaskState.RUNNABLE:
            self.stats.wait_ns += elapsed
        elif self.state in (TaskState.SLEEPING, TaskState.VBLOCKED):
            self.stats.sleep_ns += elapsed
        self.state_since = now

    def set_state(self, state: TaskState, now: int) -> None:
        self.account_state(now)
        self.state = state

    def set_mode(self, mode: RunMode, now: int) -> None:
        self.account_state(now)
        self.mode = mode
        self.mode_since = now
