"""The simulated kernel: CPUs, CFS scheduling, futex/epoll, load balancing.

Execution model
---------------
Each CPU runs at most one task.  A running task has a *current charge* — the
remaining on-CPU nanoseconds of its current action (``None`` while spinning,
which burns CPU until granted or preempted).  The kernel schedules one engine
event per CPU (the earliest of action completion and slice expiry) and
invalidates stale events with a per-CPU generation counter.  Interruptions
(wakeup preemption, spin grants, BWD deschedules) synchronize the running
task's progress first, then mutate state.

Blocking follows the paper's two paths:

* **vanilla** (Figure 5): the waiter pays syscall + bucket-lock + dequeue
  costs and leaves the runqueue (``SLEEPING``).  The *waker* serially
  processes the wake queue: per waiter — bucket lock, wake_q move, idlest
  core selection, target runqueue lock (a real serialization timeline shared
  with other wakers), enqueue, and a wakeup-preemption check.  Waking on a
  different CPU than the task last ran on counts as a migration.
* **virtual blocking** (Section 3.1): the waiter sets ``thread_state`` and is
  re-enqueued at the tail of its own runqueue with a sentinel vruntime;
  waking clears the flag and re-keys it in place — no core selection, no
  cross-CPU locking, no load fluctuation.
"""

from __future__ import annotations

import math
import os
from typing import Any, Generator

from ..config import ExecMode, SimConfig
from ..core.bwd import BwdMonitor
from ..core.virtual_blocking import VirtualBlockingPolicy
from ..errors import DeadlockError, ProgramError, SimulationError
from ..fastpath import make_engine, make_runqueue
from ..fastpath import soa as _soa
from ..hw.memmodel import MemoryModel
from ..hw.ple import PauseLoopExiting
from ..hw.topology import Topology
from ..obs.hist import Log2Histogram
from ..obs.session import current_session
from ..prog import actions as A
from ..sim.engine import Engine
from ..sim.rng import RngStreams
from ..sim.trace import TraceRecorder
from .epoll import EpollInstance
from .futex import FutexTable
from .hrtimer import HrTimer
from .locks import SimLockTimeline
from .policy import current_policy, get_policy
from .runqueue import VB_SENTINEL, CfsRunqueue
from .task import ExecProfile, RunMode, Task, TaskState

# Always-on schedstats (PSI counts, runqueue-depth integrals, per-CPU
# switch counters).  Collection is pure O(1) integer accounting with no
# RNG draws and no engine events, so digests are unaffected either way;
# the flag exists so benchmarks/perf/bench_telemetry.py can measure the
# overhead delta and the perf gate can hold it under budget.
SCHEDSTATS = True


class CpuState:
    """Per-CPU scheduler state and accounting."""

    __slots__ = (
        "id",
        "info",
        "rq",
        "rq_lock",
        "sib",
        "gen",
        "event",
        "run_started",
        "run_factor",
        "slice_end",
        "busy_ns",
        "irq_ns",
        "sched_ns",
        "stall_ns",
        "poll_ns",
        "poll_idle_since",
        "last_task",
        "online",
        "nr_switches",
    )

    def __init__(self, cpu_id: int, info) -> None:
        self.id = cpu_id
        self.info = info
        # Backend-selected runqueue: the reference rbtree CfsRunqueue
        # (pure) or the heap-backed FastCfsRunqueue (fast) — identical
        # pick order either way (see repro.fastpath).
        self.rq = make_runqueue(cpu_id)
        self.rq_lock = SimLockTimeline(f"rq-{cpu_id}")
        self.sib: "CpuState | None" = None  # SMT sibling, wired by Kernel
        self.gen = 0
        self.event = None
        self.run_started = 0
        self.run_factor = 1.0
        self.slice_end = 0
        self.busy_ns = 0
        self.irq_ns = 0
        self.sched_ns = 0
        self.stall_ns = 0  # migration cache-refill stalls (memory-bound)
        self.poll_ns = 0
        self.poll_idle_since: int | None = None
        self.last_task: Task | None = None
        self.online = True
        self.nr_switches = 0  # schedstats: context switches on this CPU


class Kernel:
    """Facade tying the engine, topology, scheduler, and monitors together."""

    def __init__(
        self,
        config: SimConfig,
        engine: Engine | None = None,
        trace: TraceRecorder | None = None,
    ):
        self.config = config
        # Scheduling policy (docs/scheduling.md): SimConfig.policy wins,
        # else the process-global default (--policy / REPRO_POLICY).  The
        # default CFS keeps the kernel's historical inlined decision
        # paths — bit-identical and KernelCycle-eligible; other policies
        # route those decisions through the SchedPolicy hooks.
        pol = config.policy if config.policy is not None else current_policy()
        self.policy = get_policy(pol)
        self.policy.configure(config.scheduler)
        self._policy_cfs = self.policy.inline_fast_path
        self.engine = engine or make_engine()
        # An enclosing observe() session supplies the recorder (and an
        # interval sampler) unless the caller passed an explicit trace.
        self._obs_session = current_session()
        if trace is None and self._obs_session is not None:
            trace = self._obs_session.recorder
        self.trace = trace or TraceRecorder(enabled=False)
        # Always-on latency histograms: O(1) per sample, attached to
        # RunStats.extra by the metrics collector.
        self.hists = {
            name: Log2Histogram(name)
            for name in ("wakeup_latency_ns", "futex_block_ns",
                         "bwd_spin_to_deschedule_ns")
        }
        # Hot-path aliases: skip two dict lookups per latency sample.
        self._h_wakeup = self.hists["wakeup_latency_ns"]
        self._h_block = self.hists["futex_block_ns"]
        # Invariant guard: latency probes must never feed a negative
        # duration to the histograms (chaos clock faults can re-order the
        # timestamps a probe subtracts).  Violations are clamped at the
        # probe site and counted here.
        self.negative_latency_samples = 0
        self._obs_sampler = None
        self._obs_reported = False
        self.rng_streams = RngStreams(config.seed)
        self._rng_sched = self.rng_streams.stream("kernel.sched")

        hw = config.hardware
        # Topology over the whole machine; ``online`` tracks elastic CPUs.
        self.topology = Topology(hw, online_cpus=None)
        self.cpus = [CpuState(c.cpu_id, c) for c in self.topology.cpus]
        initial = config.online_cpus or len(self.cpus)
        if initial > len(self.cpus):
            raise SimulationError(
                f"online_cpus={initial} exceeds machine size {len(self.cpus)}"
            )
        self._online: list[int] = list(range(initial))
        for cpu in self.cpus[initial:]:
            cpu.online = False
        # SMT siblings are static: resolve them once instead of per dispatch.
        for cpu in self.cpus:
            sib = self.topology.smt_sibling(cpu.id)
            if sib is not None and sib < len(self.cpus):
                cpu.sib = self.cpus[sib]
        self._smt_factor = hw.smt_throughput_factor
        if not self._policy_cfs:
            # Non-CFS policies key the runqueues themselves (the VB
            # sentinel still wins inside _key_for, for every policy).
            key_fn = self.policy.queue_key
            for cpu in self.cpus:
                cpu.rq.key_fn = key_fn

        # Struct-of-arrays load board (fast backend, wide machines):
        # runqueues write-through size/blocked so balance scans run as
        # numpy reductions.  Narrow fleets keep the scalar loops — the
        # numpy fixed cost only pays off past VECTOR_MIN_CPUS.
        self._soa_board = None
        self._online_np = None
        first_rq = self.cpus[0].rq if self.cpus else None
        if (
            len(self.cpus) >= _soa.VECTOR_MIN_CPUS
            and hasattr(first_rq, "_board")
        ):
            board = _soa.CpuLoadBoard(len(self.cpus))
            board.attach([c.rq for c in self.cpus])
            self._soa_board = board

        # Schedstats + PSI-style pressure accounting (docs/telemetry.md).
        # ``psi_waiting``/``psi_running`` track runnable-not-running and
        # running task counts; some/full stall time integrates over them.
        self._schedstats = SCHEDSTATS
        self.psi_waiting = 0
        self.psi_running = 0
        self._psi_pending = False  # deferred +1w/-1r from _put_prev_runnable
        self.psi_some_ns = 0
        self.psi_full_ns = 0
        self._psi_last = self.engine.now
        self._psi_bucket_ns = 10_000_000  # checkpoint cadence (10 ms)
        self._psi_next_ckpt = self.engine.now + self._psi_bucket_ns
        self._psi_checkpoints: list[tuple[int, int, int]] = []
        # Machine-wide runqueue-depth integral (Σ nr_running · dt).  The
        # total only changes at spawn/exit/sleep-park/vanilla-wake —
        # context switches, migrations and VB requeues move tasks between
        # queues but are net-zero — so maintaining it here costs nothing
        # on the switch path, unlike a per-runqueue integral would.
        self.rq_depth_integral_ns = 0
        self._rqd_total = 0
        self._rqd_at = self.engine.now

        self.futex_table = FutexTable()
        self.vb_policy = VirtualBlockingPolicy(config.vb)
        self.memmodel = MemoryModel(hw)
        self.bwd: BwdMonitor | None = None
        if config.bwd.enabled:
            self.bwd = BwdMonitor(
                config.bwd, config.profiling, self.rng_streams.stream("bwd")
            )
            self.bwd.install(self)
        self.ple: PauseLoopExiting | None = None
        self._ple_timer: HrTimer | None = None
        if config.ple.enabled and config.mode is ExecMode.VM:
            self.ple = PauseLoopExiting(config.ple, len(self.cpus))
            self._ple_timer = HrTimer(
                self.engine,
                config.ple.window_ns // 2,
                self._ple_tick,
                name="ple",
            )
            self._ple_timer.start()

        self.tasks: list[Task] = []
        self.live_tasks = 0
        self.migrations_in_node = 0
        self.migrations_cross_node = 0
        self.wake_migrations = 0
        self.balance_migrations = 0
        self._spawn_rr = 0
        self.start_time = self.engine.now

        self._balance_timer = HrTimer(
            self.engine,
            config.scheduler.balance_interval_ns,
            self._balance_tick,
            name="balance",
        )
        self._balance_timer.start()

        # Chaos harness (lazy import: repro.chaos pulls in the runner
        # registry for replay bundles).  A chaos_session() block installs a
        # controller on every kernel built inside it; the invariant checker
        # can also run standalone via config or environment.
        self.epolls: dict[int, "EpollInstance"] = {}
        self._chaos = None
        self.invariants = None
        from ..chaos import current_chaos

        chaos = current_chaos()
        check = config.check_invariants or (
            os.environ.get("REPRO_CHECK_INVARIANTS", "") not in ("", "0")
        )
        interval = None
        horizon = None
        if chaos is not None:
            plan = chaos.plan
            if not self.trace.enabled:
                # Replay bundles carry a trace tail; keep a small ring even
                # when no observability session is active.
                self.trace = TraceRecorder(
                    enabled=True, capacity=max(plan.trace_tail, 4) * 4
                )
            from ..chaos.controller import ChaosController

            self._chaos = ChaosController(self, plan)
            chaos.controllers.append(self._chaos)
            self._chaos.install()
            if plan.check_invariants:
                check = True
            interval = plan.check_interval_events
            horizon = plan.progress_horizon_ns
        if check:
            from ..chaos.invariants import (
                DEFAULT_INTERVAL,
                DEFAULT_PROGRESS_HORIZON_NS,
                InvariantChecker,
            )

            self.invariants = InvariantChecker(
                self,
                interval=DEFAULT_INTERVAL if interval is None else interval,
                progress_horizon_ns=(
                    DEFAULT_PROGRESS_HORIZON_NS if horizon is None else horizon
                ),
            )
            self.engine.on_event = self.invariants.on_event

        # Last: the sampler reads cpus/tasks, which must all exist.
        if self._obs_session is not None:
            self._obs_sampler = self._obs_session.attach(self)

        # C hot cycle (fast backend): when the engine is the C extension,
        # route the per-CPU event callback through the KernelCycle
        # accelerator.  It replays _cpu_event/_continue/_dispatch for the
        # common cases and calls back into the Python methods for
        # everything rare (tracing on, parks, wakes, idle pulls, spins),
        # so results are bit-identical by construction.
        self._cycle = None
        self._cpu_event_entry = self._cpu_event
        if type(self.engine).__module__ == "repro.fastpath._fastcore":
            from ..fastpath.build import load_fastcore

            core = load_fastcore()
            if core is not None and hasattr(core, "KernelCycle"):
                try:
                    support = _cycle_support()
                    # Non-CFS policies make scheduling decisions in
                    # Python; the C cycle bails out per event (counted
                    # in counters()["bailouts"]) instead of replaying
                    # its inlined CFS logic.
                    support["POLICY_IS_CFS"] = 1 if self._policy_cfs else 0
                    self._cycle = core.KernelCycle(self, support)
                    self._cpu_event_entry = self._cycle.cpu_event
                except Exception:
                    self._cycle = None
                    self._cpu_event_entry = self._cpu_event

    # ==================================================================
    # Public API
    # ==================================================================
    @property
    def now(self) -> int:
        return self.engine.now

    def online_cpus(self) -> list[int]:
        return list(self._online)

    def current_task(self, cpu_id: int) -> Task | None:
        return self.cpus[cpu_id].rq.curr

    def spawn(
        self,
        program: Generator[A.Action, Any, None],
        name: str = "task",
        profile: ExecProfile | None = None,
        pinned_cpu: int | None = None,
        nice: int = 0,
    ) -> Task:
        """Create a task and enqueue it on an online CPU (round-robin)."""
        if not hasattr(program, "send"):
            raise ProgramError(
                f"spawn() needs a generator (got {type(program).__name__}); "
                "write the program as a function that yields actions"
            )
        task = Task(name, program, profile, nice=nice)
        task.pinned_cpu = pinned_cpu
        task.state_since = self.now
        self.tasks.append(task)
        self.live_tasks += 1
        if pinned_cpu is not None:
            if pinned_cpu not in self._online:
                raise SimulationError(f"pinned CPU {pinned_cpu} is offline")
            target = pinned_cpu
        else:
            target = self._online[self._spawn_rr % len(self._online)]
            self._spawn_rr += 1
        cpu = self.cpus[target]
        task.vruntime = cpu.rq.min_vruntime
        task.set_state(TaskState.RUNNABLE, self.now)
        if self._schedstats:
            self._depth_delta(self.now, 1)
            self._psi_transition(self.now, 1, 0)
        task.last_cpu = target
        cpu.rq.enqueue(task)
        self._check_preempt(cpu, task)
        return task

    def run_for(self, ns: int, max_events: int | None = None) -> None:
        self.engine.run(until=self.engine.now + ns, max_events=max_events)

    def run_to_completion(
        self, max_ns: int = 600_000_000_000, max_events: int | None = None
    ) -> None:
        """Run until every spawned task exits.

        Raises :class:`DeadlockError` if the deadline passes with live tasks.
        """
        deadline = self.engine.now + max_ns
        self.engine.run(
            until=deadline,
            max_events=max_events,
            stop_when=lambda: self.live_tasks == 0,
        )
        if self.live_tasks > 0:
            blocked = tuple(
                f"{t.name}({t.state.value})" for t in self.tasks if t.alive
            )
            raise DeadlockError(
                f"{self.live_tasks} tasks still alive at t={self.engine.now}ns "
                f"(deadline {deadline}ns)",
                blocked_tasks=blocked,
            )
        self.shutdown()

    def shutdown(self) -> None:
        """Cancel periodic timers so the engine can drain."""
        self._balance_timer.cancel()
        if self.bwd is not None:
            self.bwd.uninstall()
        if self._ple_timer is not None:
            self._ple_timer.cancel()
        if self._obs_sampler is not None:
            self._obs_sampler.stop()
        self.obs_report()

    def obs_report(self) -> None:
        """Merge this kernel's histograms into the enclosing observability
        session (idempotent; called from shutdown and the collector so
        runners that stop mid-flight still report)."""
        if self._obs_session is not None and not self._obs_reported:
            self._obs_session.merge_hists(self.hists)
            self._obs_reported = True

    # ------------------------------------------------------------------
    # PSI-style pressure accounting (schedstats)
    # ------------------------------------------------------------------
    def _psi_update(self, now: int) -> None:
        """Integrate some/full stall time up to ``now``, emitting exact
        cumulative checkpoints at every 10 ms bucket boundary crossed."""
        last = self._psi_last
        if now <= last:
            return
        waiting = self.psi_waiting > 0
        if now < self._psi_next_ckpt:
            # Fast path: no bucket boundary crossed (checkpoints are
            # every 10 ms; transitions every few us under load).
            if waiting:
                dt = now - last
                self.psi_some_ns += dt
                if self.psi_running == 0:
                    self.psi_full_ns += dt
            self._psi_last = now
            return
        full = waiting and self.psi_running == 0
        nxt = self._psi_next_ckpt
        while nxt <= now:
            if waiting:
                dt = nxt - last
                self.psi_some_ns += dt
                if full:
                    self.psi_full_ns += dt
            last = nxt
            self._psi_checkpoints.append(
                (nxt, self.psi_some_ns, self.psi_full_ns)
            )
            nxt += self._psi_bucket_ns
        self._psi_next_ckpt = nxt
        if waiting:
            dt = now - last
            self.psi_some_ns += dt
            if full:
                self.psi_full_ns += dt
        self._psi_last = now

    def _psi_transition(self, now: int, d_wait: int, d_run: int) -> None:
        # ``_psi_update`` integrates purely from the predicates
        # ``waiting > 0`` and ``running == 0``; while neither flips, the
        # counters may change freely with no time accounting, and its
        # checkpoint loop handles arbitrarily long constant spans.  So
        # only predicate flips pay for an update — the call per
        # transition is measurable at engine event rates
        # (benchmarks/perf/bench_telemetry.py).
        w = self.psi_waiting
        r = self.psi_running
        nw = w + d_wait
        nr = r + d_run
        if (nw > 0) != (w > 0) or (nr == 0) != (r == 0):
            self._psi_update(now)
        self.psi_waiting = nw
        self.psi_running = nr

    def _psi_flush(self, now: int) -> None:
        """Apply a deferred _put_prev_runnable transition when _schedule
        exits without dispatching (offline CPU, failed idle pull, or an
        all-VB-blocked queue polling idle)."""
        if self._psi_pending:
            self._psi_pending = False
            self._psi_transition(now, 1, -1)

    def _depth_delta(self, now: int, delta: int) -> None:
        """Fold the span since the last total-``nr_running`` change into
        the machine-wide depth integral, then apply the change.  Readers
        settle the integral to "now" with ``delta=0``."""
        dt = now - self._rqd_at
        if dt:
            self.rq_depth_integral_ns += dt * self._rqd_total
            self._rqd_at = now
        self._rqd_total += delta

    # ------------------------------------------------------------------
    # Elasticity: runtime CPU reconfiguration
    # ------------------------------------------------------------------
    def set_online_cpus(self, n: int) -> None:
        """Hot-plug CPUs up or down, migrating tasks off offlined CPUs."""
        if n < 1 or n > len(self.cpus):
            raise SimulationError(f"cannot set online cpus to {n}")
        current = len(self._online)
        if n == current:
            return
        self._online_np = None  # invalidate the vector-scan id cache
        if n > current:
            for cpu_id in range(current, n):
                self.cpus[cpu_id].online = True
                self._online.append(cpu_id)
            return
        # Shrink: migrate everything off the victims.
        victims = self._online[n:]
        self._online = self._online[:n]
        for cpu_id in victims:
            cpu = self.cpus[cpu_id]
            cpu.online = False
            self._sync_current(cpu)
            evicted: list[Task] = []
            if cpu.rq.curr is not None:
                task = cpu.rq.curr
                task.set_state(TaskState.RUNNABLE, self.now)
                task.stats.nr_switches += 1
                task.stats.nr_involuntary += 1
                if self._schedstats:
                    # Depth integral: net-zero — the task re-enqueues on
                    # a surviving CPU via _migrate_into below.
                    self._psi_transition(self.now, 1, -1)
                cpu.rq.curr = None
                evicted.append(task)
            while cpu.rq.nr_queued:
                t = cpu.rq.pick_next()
                evicted.append(t)
            self._cancel_cpu_event(cpu)
            cpu.poll_idle_since = None
            for i, task in enumerate(evicted):
                if task.pinned_cpu is not None:
                    raise SimulationError(
                        f"pinned task {task.name} lost its CPU {cpu_id} "
                        "(the paper: pinned programs crash when CPUs shrink)"
                    )
                dest = self.cpus[self._online[i % len(self._online)]]
                self._migrate_into(task, dest, count=True)

    # ==================================================================
    # Core scheduling
    # ==================================================================
    def _speed_factor(self, cpu: CpuState) -> float:
        sib = cpu.sib
        if sib is not None and sib.online and sib.rq.curr is not None:
            return self._smt_factor
        return 1.0

    def _cancel_cpu_event(self, cpu: CpuState) -> None:
        cpu.gen += 1
        if cpu.event is not None:
            cpu.event.cancel()
            cpu.event = None

    def _sync_current(self, cpu: CpuState) -> None:
        """Fold the running task's progress up to ``now`` into its state."""
        task = cpu.rq.curr
        if task is None:
            return
        now = self.engine.now
        start = cpu.run_started
        if now <= start:
            return
        elapsed = now - start
        cpu.busy_ns += elapsed
        # CFS: virtual runtime advances inversely to the task's weight.
        if task.weight == 1024:
            task.vruntime += elapsed
        else:
            task.vruntime += elapsed * 1024 // task.weight
        rem = task.action_remaining
        if rem is not None:
            # run_factor is 1.0 except under a busy SMT sibling; skip the
            # float multiply on the common path.
            rf = cpu.run_factor
            rem -= elapsed if rf == 1.0 else int(elapsed * rf)
            task.action_remaining = rem if rem > 0 else 0
        # Inlined task.account_state(now) for the running task (this is
        # the single hottest accounting site).
        if task.state is TaskState.RUNNING:
            acct = now - task.state_since
            if acct > 0:
                if task.mode is RunMode.COMPUTE:
                    task.stats.cpu_ns += acct
                else:
                    task.stats.spin_ns += acct
            task.state_since = now
        else:
            task.account_state(now)
        cpu.run_started = now

    def _calc_slice(self, cpu: CpuState) -> int:
        nr = max(1, cpu.rq.nr_schedulable())
        if not self._policy_cfs:
            return self.policy.slice_ns(nr)
        sched = self.config.scheduler
        sl = sched.sched_latency_ns // nr
        return max(sched.min_granularity_ns, min(sched.regular_slice_ns, sl))

    def _schedule(self, cpu: CpuState) -> None:
        """Pick the next task for an idle CPU (rq.curr must be None)."""
        assert cpu.rq.curr is None
        now = self.engine.now
        if not cpu.online:
            self._psi_flush(now)
            return
        head = cpu.rq.peek_next()
        if head is None:
            pulled = self._idle_pull(cpu)
            if pulled is None:
                self._psi_flush(now)
                self._cancel_cpu_event(cpu)
                return
            head = pulled
            cpu.rq.enqueue(head)
        if head.thread_state:
            # Every queued task is virtually blocked: the CPU cycles through
            # them polling thread_state (Section 3.1).  Modeled as poll-idle:
            # the wake path charges the expected poll latency.
            self._psi_flush(now)
            self.vb_policy.stats.all_blocked_polls += 1
            if cpu.poll_idle_since is None:
                cpu.poll_idle_since = now
            self._cancel_cpu_event(cpu)
            return
        if self._policy_cfs:
            task = cpu.rq.pick_next()
        else:
            task = self.policy.pick_next(cpu.rq)
        cpu.rq.curr = task
        self._dispatch(cpu, task)

    def _dispatch(self, cpu: CpuState, task: Task) -> None:
        now = self.engine.now
        sched = self.config.scheduler
        delay = 0
        if cpu.last_task is not task:
            delay += sched.context_switch_ns
            cpu.sched_ns += sched.context_switch_ns
            task.stats.nr_switches += 1
            cpu.nr_switches += 1
        if self._schedstats:  # inline _psi_transition (hot path)
            if self._psi_pending:
                # Cancels the deferred transition from
                # _put_prev_runnable at this same timestamp.
                self._psi_pending = False
            else:
                w = self.psi_waiting
                if w == 1 or self.psi_running == 0:
                    self._psi_update(now)
                self.psi_waiting = w - 1
                self.psi_running += 1
        if task.pending_penalty_ns:
            # Cache/TLB refill after a migration: the core stalls on memory
            # (counted separately so utilization reflects lost capacity).
            delay += task.pending_penalty_ns
            cpu.stall_ns += task.pending_penalty_ns
            task.pending_penalty_ns = 0
        task.set_state(TaskState.RUNNING, now)
        # The switch/stall delay is machine overhead, not task CPU time.
        task.state_since = now + delay
        task.cpu = cpu.id
        task.last_cpu = cpu.id
        task.on_cpu_since = now
        if task.woken_at is not None:
            lat = now - task.woken_at
            if lat < 0:
                self.negative_latency_samples += 1
                lat = 0
            task.stats.wakeup_latency_ns += lat
            self._h_wakeup.record(lat)
            task.woken_at = None
        task.skip_flag = False
        cpu.run_started = now + delay
        # Inlined _speed_factor / _calc_slice (hot: once per dispatch).
        sib = cpu.sib
        cpu.run_factor = (
            self._smt_factor
            if sib is not None and sib.online and sib.rq.curr is not None
            else 1.0
        )
        nr = cpu.rq.nr_schedulable()
        if self._policy_cfs:
            sl = sched.sched_latency_ns // (nr if nr > 1 else 1)
            if sl > sched.regular_slice_ns:
                sl = sched.regular_slice_ns
            if sl < sched.min_granularity_ns:
                sl = sched.min_granularity_ns
        else:
            sl = self.policy.slice_ns(nr if nr > 1 else 1)
        cpu.slice_end = now + delay + sl
        cpu.rq.update_min_vruntime()
        if self.trace.enabled:
            self.trace.emit(now, "dispatch", cpu.id, task.name)
        self._continue(cpu)

    def _continue(self, cpu: CpuState) -> None:
        """Set up the engine event for the current task's next milestone."""
        task = cpu.rq.curr
        assert task is not None
        engine = self.engine
        now = engine.now
        # Resolve any completed blocking action or start the first action.
        # The generator resume (_advance) is inlined: this loop runs once
        # per action, millions of times per simulation.
        while True:
            if task.wake_completed:
                task.wake_completed = False
                task.block_kind = None
                if task.mode is RunMode.SPIN:
                    # Back from a spin-then-park wait: normal execution.
                    task.set_mode(RunMode.COMPUTE, now)
            elif task.action is not None:
                break
            try:
                action = task.program.send(task.pending_result)
            except StopIteration:
                self._exit_task(cpu, task)
                return
            except Exception as exc:  # a buggy program, not the simulator
                task.exit_error = exc
                self._exit_task(cpu, task)
                raise ProgramError(
                    f"program of task {task.name!r} raised {exc!r}"
                ) from exc
            task.pending_result = None
            task.action = action
            acls = action.__class__
            if acls is _COMPUTE:
                ns = action.ns
                task.action_remaining = ns if ns > 1 else 1
            else:
                handler = _ACTION_DISPATCH.get(acls)
                if handler is not None:
                    handler(self, cpu, task, action)
                else:
                    self._start_action_generic(cpu, task, action)
        rem = task.action_remaining
        if rem is None:
            # Spinning: re-check the condition (it may have been satisfied
            # while this task was off-CPU), else burn until slice expiry.
            if self._spin_recheck_condition(cpu, task):
                return  # converted into a grab charge and rescheduled
            end = cpu.slice_end
        else:
            rf = cpu.run_factor
            need = rem if rf == 1.0 else math.ceil(rem / rf)
            end = cpu.run_started + need
            slice_end = cpu.slice_end
            if slice_end < end:
                end = slice_end
            if end < now:
                end = now
        # Inlined _cancel_cpu_event; the usual case is replacing the event
        # that just fired (already consumed), which needs no cancel call.
        cpu.gen += 1
        ev = cpu.event
        if ev is not None and not ev.cancelled:
            ev.cancel()
        cpu.event = engine.schedule_at(
            end, self._cpu_event_entry, cpu.id, cpu.gen)

    def _cpu_event(self, cpu_id: int, gen: int) -> None:
        cpu = self.cpus[cpu_id]
        if gen != cpu.gen:
            return
        task = cpu.rq.curr
        if task is None:
            return
        # Inlined _sync_current (the single hottest call site; the method
        # remains for the preempt/sampler paths).
        now = self.engine.now
        start = cpu.run_started
        if now > start:
            elapsed = now - start
            cpu.busy_ns += elapsed
            if task.weight == 1024:
                task.vruntime += elapsed
            else:
                task.vruntime += elapsed * 1024 // task.weight
            rem = task.action_remaining
            if rem is not None:
                rf = cpu.run_factor
                rem -= elapsed if rf == 1.0 else int(elapsed * rf)
                task.action_remaining = rem if rem > 0 else 0
            if task.state is TaskState.RUNNING:
                acct = now - task.state_since
                if acct > 0:
                    if task.mode is RunMode.COMPUTE:
                        task.stats.cpu_ns += acct
                    else:
                        task.stats.spin_ns += acct
                task.state_since = now
            else:
                task.account_state(now)
            cpu.run_started = now
        if task.action_remaining == 0:
            # Plain completion (no park, no yield/sleep special case) goes
            # straight back to _continue without the _complete_action frame.
            if (task.action.__class__ in _PLAIN_COMPLETE
                    and task.block_kind is None):
                task.action = None
                self._continue(cpu)
            else:
                self._complete_action(cpu, task)
            return
        if now >= cpu.slice_end:
            task.stats.nr_slice_expiries += 1
            if self._policy_cfs:
                head = cpu.rq.peek_next()
                preempt = head is not None and not head.thread_state
            else:
                preempt = self.policy.tick_preempt(cpu.rq, task)
                head = cpu.rq.peek_next() if self.trace.enabled else None
            if preempt:
                # Involuntary preemption at slice expiry.
                task.stats.nr_involuntary += 1
                if self.trace.enabled:
                    self.trace.emit(now, "slice-expiry", cpu.id, task.name,
                                    preempted=True)
                    self.trace.emit(now, "preempt", cpu.id, task.name,
                                    reason="slice-expiry",
                                    by=head.name if head is not None else None)
                self._put_prev_runnable(cpu)
                self._schedule(cpu)
                return
            # Nothing else runnable: renew the slice in place.
            if self.trace.enabled:
                self.trace.emit(now, "slice-expiry", cpu.id, task.name,
                                preempted=False)
            cpu.slice_end = now + self._calc_slice(cpu)
        self._continue(cpu)

    def _put_prev_runnable(self, cpu: CpuState) -> None:
        task = cpu.rq.curr
        assert task is not None
        now = self.engine.now
        task.set_state(TaskState.RUNNABLE, now)
        if self._schedstats:
            # Defer the (+1 waiting, -1 running) transition: every
            # caller follows with _schedule at this same timestamp,
            # whose dispatch applies the exact inverse — net-zero on
            # the counters, and the transient state lasts zero time.
            # Only _schedule's no-dispatch exits pay it (_psi_flush).
            # Depth integral: also net-zero — the task re-enqueues on
            # this same runqueue just below.
            self._psi_pending = True
        cpu.rq.curr = None
        cpu.last_task = task
        cpu.rq.enqueue(task)
        cpu.rq.update_min_vruntime()

    def _advance(self, cpu: CpuState, task: Task) -> bool:
        """Resume the task's generator; returns False if the task left the
        CPU (exited or a zero-cost park happened)."""
        try:
            action = task.program.send(task.pending_result)
        except StopIteration:
            self._exit_task(cpu, task)
            return False
        except Exception as exc:  # a buggy program, not the simulator
            task.exit_error = exc
            self._exit_task(cpu, task)
            raise ProgramError(
                f"program of task {task.name!r} raised {exc!r}"
            ) from exc
        task.pending_result = None
        task.action = action
        # Inlined _start_action dispatch (one call saved per action).
        handler = _ACTION_DISPATCH.get(action.__class__)
        if handler is not None:
            handler(self, cpu, task, action)
        else:
            self._start_action_generic(cpu, task, action)
        return True

    def _exit_task(self, cpu: CpuState, task: Task) -> None:
        now = self.engine.now
        task.set_state(TaskState.EXITED, now)
        task.exited_at = now
        task.cpu = None
        self.live_tasks -= 1
        if self._schedstats:
            self._depth_delta(now, -1)
            self._psi_transition(now, 0, -1)
        cpu.rq.curr = None
        cpu.last_task = task
        if self.trace.enabled:
            self.trace.emit(now, "exit", cpu.id, task.name)
        self._schedule(cpu)

    # ==================================================================
    # Action semantics
    # ==================================================================
    def _start_action(self, cpu: CpuState, task: Task, action: A.Action) -> None:
        """Compute the action's on-CPU charge and perform entry effects.

        Dispatched through a type-keyed table (``_ACTION_DISPATCH`` at the
        bottom of this module): every program action is one dict lookup
        instead of a walk down an isinstance ladder — this runs once per
        action, millions of times per simulation.  Action subclasses (none
        in-tree) fall back to the isinstance path in ``_start_action_generic``.
        """
        handler = _ACTION_DISPATCH.get(action.__class__)
        if handler is not None:
            handler(self, cpu, task, action)
        else:
            self._start_action_generic(cpu, task, action)

    def _act_compute(self, cpu: CpuState, task: Task, action) -> None:
        ns = action.ns
        task.action_remaining = ns if ns > 1 else 1

    def _act_memtraverse(self, cpu: CpuState, task: Task, action) -> None:
        epoch = self.memmodel.epoch(
            action.pattern,
            action.region_bytes,
            action.total_bytes,
            action.nthreads,
        )
        task.action_remaining = max(1, int(epoch.time_ns * action.epochs))

    def _act_atomic_rmw(self, cpu: CpuState, task: Task, action) -> None:
        user = self.config.user
        ctr = action.counter
        my_core = self.topology.core_of(cpu.id)
        remote = (
            ctr.last_writer_cpu is not None
            and ctr.last_writer_cpu != my_core
        )
        per_op = user.atomic_ns + (
            user.atomic_remote_extra_ns if remote else 0
        )
        ctr.last_writer_cpu = my_core
        ctr.value += action.count
        ctr.updates += action.count
        task.action_remaining = max(1, per_op * action.count)

    def _act_syscall_stub(self, cpu: CpuState, task: Task, action) -> None:
        # Yield / SleepNs: the on-CPU charge is just the syscall entry;
        # the interesting part happens at completion.
        task.action_remaining = self.config.futex.syscall_entry_ns

    def _act_blocking(self, cpu: CpuState, task: Task, action) -> None:
        entry = _BLOCKING_ENTRY.get(action.__class__)
        if entry is not None:
            cost = entry(self, task, action)
        else:  # a blocking-action subclass: resolve by isinstance
            cost = self._blocking_entry(cpu, task, action)
        task.action_remaining = cost if cost > 1 else 1

    def _act_spin_acquire(self, cpu: CpuState, task: Task, action) -> None:
        lock = action.lock
        if lock.try_acquire(task):
            task.action_remaining = self.config.user.fast_ns
        else:
            lock.add_waiter(task)
            task.spin_target = lock
            task.set_mode(RunMode.SPIN, self.engine.now)
            task.action_remaining = None

    def _act_spin_release(self, cpu: CpuState, task: Task, action) -> None:
        candidates = action.lock.release(task)
        self._notify_spinners(candidates, action.lock)
        task.action_remaining = self.config.user.fast_ns

    def _act_spin_until_flag(self, cpu: CpuState, task: Task, action) -> None:
        flag = action.flag
        if flag.value >= action.target:
            task.action_remaining = self.config.user.fast_ns
        else:
            flag.waiters.append(task)
            task.spin_target = action
            task.set_mode(RunMode.SPIN, self.engine.now)
            task.action_remaining = None

    def _act_flag_set(self, cpu: CpuState, task: Task, action) -> None:
        flag = action.flag
        flag.value = flag.value + action.value if action.add else action.value
        satisfied = [t for t in flag.waiters]
        self._notify_spinners(satisfied, flag)
        task.action_remaining = self.config.user.flag_write_ns

    def _act_epoll_wait(self, cpu: CpuState, task: Task, action) -> None:
        ep: EpollInstance = action.epoll
        self.epolls.setdefault(id(ep), ep)
        if len(ep):
            task.pending_result = ep.take(action.max_events)
            task.action_remaining = self.config.futex.syscall_entry_ns
        else:
            cost = self.futex_wait(task, ep)
            task.action_remaining = max(1, cost)

    def _start_action_generic(
        self, cpu: CpuState, task: Task, action: A.Action
    ) -> None:
        """Fallback for action *subclasses*: resolve by isinstance, then
        cache the winning handler for the concrete type."""
        for cls, handler in list(_ACTION_DISPATCH.items()):
            if isinstance(action, cls):
                _ACTION_DISPATCH[action.__class__] = handler
                handler(self, cpu, task, action)
                return
        raise ProgramError(f"unknown action {action!r} from {task.name}")

    def _blocking_entry(self, cpu: CpuState, task: Task, action: A.Action) -> int:
        """Drive a blocking primitive's entry hook; may arrange a park."""
        if isinstance(action, A.MutexAcquire):
            return action.mutex.acquire(self, task)
        if isinstance(action, A.MutexRelease):
            return action.mutex.release(self, task)
        if isinstance(action, A.MutexEnsure):
            return action.mutex.ensure(self, task)
        if isinstance(action, A.CondWait):
            return action.cond.wait(self, task)
        if isinstance(action, A.CondWaitRequeue):
            return action.cond.wait_with(self, task, action.mutex)
        if isinstance(action, A.CondBroadcastRequeue):
            return action.cond.broadcast_requeue(self, task, action.mutex)
        if isinstance(action, A.RwAcquireRead):
            return action.lock.acquire_read(self, task)
        if isinstance(action, A.RwReleaseRead):
            return action.lock.release_read(self, task)
        if isinstance(action, A.RwAcquireWrite):
            return action.lock.acquire_write(self, task)
        if isinstance(action, A.RwReleaseWrite):
            return action.lock.release_write(self, task)
        if isinstance(action, A.CondSignal):
            return action.cond.signal(self, task)
        if isinstance(action, A.CondBroadcast):
            return action.cond.broadcast(self, task)
        if isinstance(action, A.BarrierWait):
            return action.barrier.wait(self, task)
        if isinstance(action, A.SemWait):
            return action.sem.wait(self, task)
        if isinstance(action, A.SemPost):
            return action.sem.post(self, task)
        raise ProgramError(f"unhandled blocking action {action!r}")

    def _complete_action(self, cpu: CpuState, task: Task) -> None:
        """The current action's charge finished; apply completion effects."""
        action = task.action
        now = self.engine.now
        # Exact-class checks first (the common case); subclasses of the
        # syscall stubs (none in-tree) fall through to isinstance below.
        cls = action.__class__
        if cls is A.Yield:
            task.action = None
            task.stats.nr_voluntary += 1
            # Step behind peers at the same vruntime.
            task.vruntime += 1
            self._put_prev_runnable(cpu)
            self._schedule(cpu)
            return
        if cls is A.SleepNs:
            task.action = None
            task.pending_result = None
            self._park(cpu, task, kind="sleep")
            self.engine.schedule(action.ns, self._timer_wake, task)
            return
        if (cls is not A.Compute and cls is not A.MemTraverse
                and isinstance(action, (A.Yield, A.SleepNs))):
            if isinstance(action, A.Yield):
                task.action = None
                task.stats.nr_voluntary += 1
                task.vruntime += 1
                self._put_prev_runnable(cpu)
                self._schedule(cpu)
                return
            task.action = None
            task.pending_result = None
            self._park(cpu, task, kind="sleep")
            self.engine.schedule(action.ns, self._timer_wake, task)
            return
        if task.block_kind is not None:
            # A blocking action whose entry decided to park.
            if task.wake_pending:
                # The wake raced with the pre-park window: consume it.
                task.wake_pending = False
                task.block_kind = None
                task.action = None
                self._continue(cpu)
                return
            task.action = None
            if task.mode is RunMode.SPIN:
                task.set_mode(RunMode.COMPUTE, now)
            self._park(cpu, task, kind=task.block_kind)
            return
        # Ordinary completion: continue with the next action in-slice.
        task.action = None
        self._continue(cpu)

    # ==================================================================
    # Parking and waking
    # ==================================================================
    def _park(self, cpu: CpuState, task: Task, kind: str) -> None:
        now = self.engine.now
        task.stats.nr_voluntary += 1
        task.stats.nr_switches += 1
        if self._schedstats:
            if kind != "vb":  # VB keeps the task queued: depth unchanged
                self._depth_delta(now, -1)
            self._psi_transition(now, 0, -1)
        cpu.rq.curr = None
        cpu.last_task = task
        if kind == "vb":
            task.thread_state = 1
            task.saved_vruntime = task.vruntime
            task.set_state(TaskState.VBLOCKED, now)
            task.vb_cpu = cpu.id
            cpu.rq.enqueue(task)  # tail position via the sentinel key
        else:
            task.set_state(TaskState.SLEEPING, now)
            task.cpu = None
        cpu.rq.update_min_vruntime()
        if self.trace.enabled:
            self.trace.emit(now, "park", cpu.id, task.name, how=kind)
        self._schedule(cpu)

    def futex_wait(self, task: Task, obj: Any) -> int:
        """Primitive hook: queue ``task`` on ``obj``'s bucket and arrange the
        park.  Returns the pre-park on-CPU cost (Figure 5 steps 1-4)."""
        fc = self.config.futex
        bucket = self.futex_table.bucket(obj)
        cost = fc.syscall_entry_ns + bucket.lock.acquire(
            self.engine.now, fc.bucket_lock_hold_ns
        )
        if self.vb_policy.config.enabled:
            # VB park: flip thread_state and re-key at the tail of the
            # local runqueue — no sleep-queue shuttling.
            cost += self.config.vb.block_cost_ns
            task.block_kind = "vb"
            self.vb_policy.stats.vb_blocks += 1
        else:
            cost += fc.sleep_dequeue_ns
            task.block_kind = "sleep"
            self.vb_policy.stats.vanilla_blocks += 1
        bucket.waiters.append(task)
        bucket.total_waits += 1
        task.stats.nr_blocks += 1
        task.stats.nr_futex_waits += 1
        if self.trace.enabled:
            self.trace.emit(
                self.engine.now, "futex-wait",
                task.cpu if task.cpu is not None else -1, task.name,
                waiters=len(bucket.waiters), vb=task.block_kind == "vb",
            )
        return cost

    def futex_wait_spin(self, task: Task, obj: Any, spin_ns: int) -> int:
        """Spin-then-park (Mutexee / MCS-TP / SHFLLOCK): the waiter joins
        the futex queue, busy-waits for ``spin_ns`` hoping for a fast
        handoff, then parks.  A wake landing inside the spin window is
        consumed at park time (no sleep happens); the spin itself runs in
        SPIN mode, so it is accounted as burned cycles and is visible to
        BWD when the window exceeds a monitoring period."""
        cost = self.futex_wait(task, obj)
        if spin_ns > 0:
            task.set_mode(RunMode.SPIN, self.now)
        return cost + max(0, spin_ns)

    def futex_waiters(self, obj: Any) -> int:
        return self.futex_table.waiter_count(obj)

    def futex_peek(self, obj: Any) -> Task | None:
        """First waiter in FIFO order (the one futex_wake(n=1) would wake)."""
        bucket = self.futex_table.bucket(obj)
        return bucket.waiters[0] if bucket.waiters else None

    def futex_requeue_front(self, obj: Any, task: Task) -> bool:
        """Move ``task`` to the front of the bucket queue (SHFLLOCK's
        shuffler reorders waiters without waking them)."""
        bucket = self.futex_table.bucket(obj)
        try:
            bucket.waiters.remove(task)
        except ValueError:
            return False
        bucket.waiters.appendleft(task)
        return True

    def futex_requeue(
        self,
        waker: Task | None,
        src_obj: Any,
        dst_obj: Any,
        wake_n: int = 1,
    ) -> int:
        """FUTEX_CMP_REQUEUE: wake ``wake_n`` waiters of ``src_obj`` and
        splice the remaining waiters onto ``dst_obj``'s queue unwoken.

        glibc's ``pthread_cond_broadcast`` uses this to avoid the
        thundering herd: one waiter wakes, the rest queue directly on the
        mutex and are woken one at a time as it is handed over.  Returns
        the cost charged to the waker; the splice is a per-waiter queue
        move under the two bucket locks — far cheaper than full wakeups.
        """
        fc = self.config.futex
        src = self.futex_table.bucket(src_obj)
        dst = self.futex_table.bucket(dst_obj)
        cost = self.futex_wake(waker, src_obj, wake_n)
        now = self.engine.now
        moved = 0
        while src.waiters:
            w = src.waiters.popleft()
            dst.waiters.append(w)
            moved += 1
        if moved:
            cost += src.lock.acquire(now + cost, fc.bucket_lock_hold_ns)
            cost += dst.lock.acquire(now + cost, fc.bucket_lock_hold_ns)
            cost += moved * fc.wakeq_move_ns
        return cost

    def futex_wake(
        self,
        waker: Task | None,
        obj: Any,
        n: int = 1,
        result: Any = None,
    ) -> int:
        """Primitive hook: wake up to ``n`` waiters of ``obj``.

        Returns the total cost charged to the waker (it processes the wake
        queue serially, Figure 5 steps 5-7).  ``waker=None`` models an
        interrupt-context wake (timer, network RX): costs land on the target
        CPU's interrupt accounting instead.
        """
        fc = self.config.futex
        vbc = self.config.vb
        bucket = self.futex_table.bucket(obj)
        # VB's under-subscription rule (Section 3.1): when fewer threads
        # wait on this bucket than there are cores, every waiter can get a
        # dedicated core on simultaneous wakeup, so VB's stay-in-place wake
        # is *disabled* and the wake selects a core like a normal wakeup
        # (still without sleep-queue shuttling).  Oversubscribed buckets
        # wake in place.
        n_online = len(self._online)
        in_place = self.vb_policy.wake_in_place(
            len(bucket.waiters), n_online
        )
        total = fc.syscall_entry_ns if waker is not None else 0
        engine = self.engine
        # Chaos interception point: an installed controller may delay or
        # drop individual wake completions (fault model "wake-delay" /
        # "wake-drop"); without one this is engine.schedule_at verbatim.
        chaos = self._chaos
        sched_wake = engine.schedule_at if chaos is None else chaos.schedule_wake
        t = engine.now + total
        woken = 0
        sync_wake = n == 1
        # Loop-invariant: the idlest-core scan cost depends only on the
        # online-CPU count.
        select_cost = fc.select_core_ns(n_online)
        while bucket.waiters and woken < n:
            w = bucket.waiters.popleft()
            bucket.total_wakes += 1
            w.pending_result = result
            w.sync_wake = sync_wake
            if w.block_kind == "vb" and in_place:
                c = vbc.wake_cost_ns
                t += c
                total += c
                sched_wake(t, self._finish_wake_vb, w)
                self.vb_policy.stats.vb_wakes += 1
            elif w.block_kind == "vb":
                c = select_cost
                proxy = w.last_cpu if w.last_cpu is not None else self._online[0]
                c += self.cpus[proxy].rq_lock.acquire(
                    t + c, fc.rq_lock_hold_ns
                )
                c += fc.enqueue_ns
                t += c
                total += c
                sched_wake(t, self._finish_wake_vb_placed, w)
                self.vb_policy.stats.vb_placed_wakes += 1
            else:
                c = bucket.lock.acquire(t, fc.bucket_lock_hold_ns)
                c += fc.wakeq_move_ns
                c += select_cost
                # The runqueue-lock serialization is costed against the
                # waiter's previous CPU; the actual placement is decided at
                # finish time, when earlier wakes of this batch are visible.
                proxy = w.last_cpu if w.last_cpu is not None else self._online[0]
                c += self.cpus[proxy].rq_lock.acquire(
                    t + c, fc.rq_lock_hold_ns
                )
                c += fc.enqueue_ns
                t += c
                total += c
                sched_wake(t, self._finish_wake_vanilla, w)
                self.vb_policy.stats.vanilla_wakes += 1
            woken += 1
        if waker is None and woken:
            # Interrupt-context processing time.
            first = self._select_wake_cpu_id_safe()
            self.cpus[first].irq_ns += total
        if self.trace.enabled and woken:
            wcpu = -1
            if waker is not None and waker.cpu is not None:
                wcpu = waker.cpu
            self.trace.emit(
                engine.now, "futex-wake", wcpu,
                waker.name if waker is not None else None,
                woken=woken, remaining=len(bucket.waiters),
                in_place=in_place, cost_ns=total,
            )
        return total

    def _select_wake_cpu_id_safe(self) -> int:
        return self._online[0]

    def _select_wake_cpu(self, task: Task, sync: bool = False) -> int:
        """select_task_rq at wakeup: the previous CPU if it is idle;
        otherwise the idlest CPU, keeping the previous one on a tie only
        with ``wake_affinity_bias`` probability.  Under bursty group
        wakeups this spreads threads across cores — the migration churn
        the paper measures in Table 1.

        ``sync`` marks 1:1 wakeups (mutex/semaphore handoffs): wake_affine
        keeps those near their cache unless the previous CPU is clearly
        overloaded."""
        if task.pinned_cpu is not None:
            return task.pinned_cpu
        cpus = self.cpus
        # A virtually-blocked task still sits on its home runqueue; don't
        # let it count against its own wake placement.
        vb_home = task.vb_cpu if task.state is TaskState.VBLOCKED else None

        prev = task.last_cpu
        prev_ok = prev is not None and cpus[prev].online
        prev_load = 0
        if prev_ok:
            rq = cpus[prev].rq
            # rq.nr_running, spelled out: the property call is measurable
            # in these per-wake loops over every online CPU.
            prev_load = rq.tree.size + (1 if rq.curr is not None else 0)
            if prev == vb_home:
                prev_load -= 1
            if prev_load == 0:
                return prev
            if sync:
                min_load = None
                for c in self._online:
                    rq = cpus[c].rq
                    load = rq.tree.size + (1 if rq.curr is not None else 0)
                    if min_load is None or load < min_load:
                        min_load = load
                if prev_load <= min_load + 1:
                    return prev
        best: list[int] = []
        best_load = None
        for cpu_id in self._online:
            rq = cpus[cpu_id].rq
            load = rq.tree.size + (1 if rq.curr is not None else 0)
            if cpu_id == vb_home:
                load -= 1
            if best_load is None or load < best_load:
                best_load = load
                best = [cpu_id]
            elif load == best_load:
                best.append(cpu_id)
        assert best_load is not None
        bias = self.config.scheduler.wake_affinity_bias
        if best_load >= 1:
            # No idle CPU: wake_affine keeps 1:1 wakeups near their cache
            # unless the previous CPU is clearly overloaded.
            if (
                prev_ok
                and prev_load <= best_load + 1
                and self._rng_sched.random() < 0.8 + 0.2 * bias
            ):
                return prev
        elif len(best) > 1 and prev in best:
            if self._rng_sched.random() < bias:
                return prev
        if len(best) == 1:
            return best[0]
        return best[int(self._rng_sched.integers(0, len(best)))]

    def _count_migration(self, task: Task, dest_cpu: int, wake: bool) -> None:
        src = task.last_cpu
        if src is None or src == dest_cpu:
            return
        sched = self.config.scheduler
        weight = task.profile.migration_weight
        if self.topology.same_node(src, dest_cpu):
            self.migrations_in_node += 1
            task.stats.nr_migrations_in_node += 1
            task.pending_penalty_ns += int(
                sched.migration_cost_in_node_ns * weight
            )
        else:
            self.migrations_cross_node += 1
            task.stats.nr_migrations_cross_node += 1
            task.pending_penalty_ns += int(
                sched.migration_cost_cross_node_ns * weight
            )
        if wake:
            self.wake_migrations += 1
        else:
            self.balance_migrations += 1

    def _finish_wake_vanilla(self, task: Task, target: int | None = None) -> None:
        if task.state in (TaskState.RUNNING, TaskState.RUNNABLE):
            # Still in (or preempted during) its pre-park window: flag the
            # wake so the park consumes it instead of sleeping.
            task.wake_pending = True
            return
        if task.state is not TaskState.SLEEPING:
            return
        now = self.engine.now
        # Placement decided now, with every earlier wake of the batch
        # already enqueued and visible.
        if target is None or not self.cpus[target].online:
            target = self._select_wake_cpu(task, sync=task.sync_wake)
        cpu = self.cpus[target]
        self._count_migration(task, target, wake=True)
        blocked_ns = now - task.state_since
        if blocked_ns < 0:
            self.negative_latency_samples += 1
            blocked_ns = 0
        self._h_block.record(blocked_ns)
        task.set_state(TaskState.RUNNABLE, now)
        if self._schedstats:
            self._depth_delta(now, 1)  # sleeping -> queued
            self._psi_transition(now, 1, 0)
        task.block_kind = None
        task.wake_completed = True
        task.woken_at = now
        task.stats.nr_wakeups += 1
        if self._policy_cfs:
            cpu.rq.place_vruntime(
                task, self.config.scheduler.sched_latency_ns // 2
            )
        else:
            self.policy.place_wakeup(cpu.rq, task)
        cpu.rq.enqueue(task)
        if self.trace.enabled:
            self.trace.emit(now, "wake", target, task.name, how="vanilla")
        self._check_preempt(cpu, task)

    def _finish_wake_vb(self, task: Task) -> None:
        if task.state in (TaskState.RUNNING, TaskState.RUNNABLE):
            task.wake_pending = True
            return
        if task.state is not TaskState.VBLOCKED:
            return
        now = self.engine.now
        cpu = self.cpus[task.vb_cpu]
        task.thread_state = 0
        saved = task.saved_vruntime
        task.vruntime = saved if saved is not None else task.vruntime
        task.saved_vruntime = None
        if self.config.vb.immediate_schedule:
            # Immediate-schedule preference for VB wakers (Section 3.1).
            task.vruntime = max(
                min(task.vruntime, cpu.rq.min_vruntime),
                cpu.rq.min_vruntime
                - self.config.scheduler.sched_latency_ns // 2,
            )
        blocked_ns = now - task.state_since
        if blocked_ns < 0:
            self.negative_latency_samples += 1
            blocked_ns = 0
        self._h_block.record(blocked_ns)
        task.set_state(TaskState.RUNNABLE, now)
        if self._schedstats:
            self._psi_transition(now, 1, 0)
        task.block_kind = None
        task.wake_completed = True
        task.woken_at = now
        task.stats.nr_wakeups += 1
        if not self.config.vb.immediate_schedule:
            # Ablation: no immediate-schedule preference; the woken task
            # keeps its restored vruntime and waits its fair turn.
            task.vruntime = max(task.vruntime, cpu.rq.min_vruntime)
        cpu.rq.requeue(task)  # re-key from the sentinel to the real vruntime
        if cpu.poll_idle_since is not None:
            # The woken task pays the expected flag-poll latency.
            cpu.poll_ns += now - cpu.poll_idle_since
            cpu.poll_idle_since = None
            task.pending_penalty_ns += self.config.vb.all_blocked_poll_ns // 2
        if self.trace.enabled:
            self.trace.emit(now, "wake", cpu.id, task.name, how="vb")
        self._check_preempt(cpu, task)

    def _finish_wake_vb_placed(self, task: Task, target: int | None = None) -> None:
        """VB wake with core selection (the bucket was under-subscribed):
        clear the flag, move the task from its home queue to the chosen
        CPU's queue."""
        if task.state in (TaskState.RUNNING, TaskState.RUNNABLE):
            task.wake_pending = True
            return
        if task.state is not TaskState.VBLOCKED:
            return
        now = self.engine.now
        home = self.cpus[task.vb_cpu]
        home.rq.dequeue(task)
        if home.poll_idle_since is not None:
            home.poll_ns += now - home.poll_idle_since
            home.poll_idle_since = None
            if home.rq.curr is None and home.online:
                self._schedule(home)
        task.thread_state = 0
        if task.saved_vruntime is not None:
            task.vruntime = task.saved_vruntime
            task.saved_vruntime = None
        # Placement decided now (see _finish_wake_vanilla).
        if target is None or not self.cpus[target].online:
            target = self._select_wake_cpu(task, sync=task.sync_wake)
        cpu = self.cpus[target]
        self._count_migration(task, target, wake=True)
        blocked_ns = now - task.state_since
        if blocked_ns < 0:
            self.negative_latency_samples += 1
            blocked_ns = 0
        self._h_block.record(blocked_ns)
        task.set_state(TaskState.RUNNABLE, now)
        if self._schedstats:
            self._psi_transition(now, 1, 0)
        task.block_kind = None
        task.wake_completed = True
        task.woken_at = now
        task.stats.nr_wakeups += 1
        task.vruntime = (
            task.vruntime - home.rq.min_vruntime + cpu.rq.min_vruntime
        )
        if self._policy_cfs:
            cpu.rq.place_vruntime(
                task, self.config.scheduler.sched_latency_ns // 2
            )
        else:
            self.policy.place_wakeup(cpu.rq, task)
        cpu.rq.enqueue(task)
        if self.trace.enabled:
            self.trace.emit(now, "wake", target, task.name, how="vb-placed")
        self._check_preempt(cpu, task)

    def _timer_wake(self, task: Task) -> None:
        if task.state is TaskState.RUNNING:
            task.wake_pending = True
            return
        if task.state is not TaskState.SLEEPING:
            return
        target = self._select_wake_cpu(task)
        self._finish_wake_vanilla(task, target)

    def _check_preempt(self, cpu: CpuState, woken: Task) -> None:
        curr = cpu.rq.curr
        if curr is None:
            if cpu.online:
                self._schedule(cpu)
            return
        self._sync_current(cpu)
        if self._policy_cfs:
            gran = self.config.scheduler.wakeup_granularity_ns
            preempt = curr.vruntime - woken.vruntime > gran
        else:
            preempt = self.policy.check_preempt(curr, woken)
        if preempt:
            curr.stats.nr_involuntary += 1
            if self.trace.enabled:
                self.trace.emit(self.now, "preempt", cpu.id, curr.name,
                                reason="wakeup", by=woken.name)
            self._cancel_cpu_event(cpu)
            self._put_prev_runnable(cpu)
            self._schedule(cpu)

    # ==================================================================
    # Spinning
    # ==================================================================
    def _notify_spinners(self, candidates: list[Task], target: Any) -> None:
        """A spin release/flag-set may allow waiters to proceed.  Running
        spinners notice after a cacheline-transfer delay; descheduled ones
        re-check when next dispatched."""
        grant = self.config.user.spin_grant_ns
        for c in candidates:
            if c.state is TaskState.RUNNING and c.mode is RunMode.SPIN:
                self.engine.schedule(grant, self._spin_notify, c)

    def _spin_notify(self, task: Task) -> None:
        if task.state is not TaskState.RUNNING or task.mode is not RunMode.SPIN:
            return
        cpu = self.cpus[task.cpu]
        if cpu.rq.curr is not task:
            return
        self._sync_current(cpu)
        if self._spin_recheck_condition(cpu, task):
            return
        # Condition not ours (another spinner won the race): keep spinning.

    def _spin_recheck_condition(self, cpu: CpuState, task: Task) -> bool:
        """If the spin target is now satisfied, convert the spin into a
        short grab charge.  Returns True if converted (and rescheduled)."""
        action = task.action
        satisfied = False
        if isinstance(action, A.SpinAcquire):
            satisfied = action.lock.try_acquire(task)
        elif isinstance(action, A.SpinUntilFlag):
            flag = action.flag
            if flag.value >= action.target:
                satisfied = True
                if task in flag.waiters:
                    flag.waiters.remove(task)
        if not satisfied:
            return False
        task.set_mode(RunMode.COMPUTE, self.now)
        task.spin_target = None
        task.action_remaining = self.config.user.spin_grant_ns
        self._continue(cpu)
        return True

    def bwd_deschedule(self, cpu_id: int, task: Task, cost_ns: int) -> None:
        """BWD hook: kick the spinning task off the CPU with a skip flag —
        it runs again only after everyone else on this queue had a turn."""
        cpu = self.cpus[cpu_id]
        if cpu.rq.curr is not task:
            return
        self._sync_current(cpu)
        cpu.irq_ns += cost_ns
        task.stats.nr_involuntary += 1
        task.stats.bwd_deschedules += 1
        if self.config.bwd.skip_flag:
            task.skip_flag = True
            # Skip semantics: place behind every queued runnable task.
            max_vr = task.vruntime
            for t in cpu.rq.tasks():
                if t.thread_state == 0:
                    max_vr = max(max_vr, t.vruntime)
            task.vruntime = max_vr + 1
        spin_ns = (
            self.engine.now - max(task.mode_since, task.on_cpu_since)
            if task.mode is RunMode.SPIN else 0
        )
        if spin_ns < 0:
            self.negative_latency_samples += 1
            spin_ns = 0
        self.hists["bwd_spin_to_deschedule_ns"].record(spin_ns)
        self._cancel_cpu_event(cpu)
        self._put_prev_runnable(cpu)
        if self.trace.enabled:
            self.trace.emit(self.engine.now, "bwd-deschedule", cpu_id,
                            task.name, spin_ns=spin_ns)
        self._schedule(cpu)

    def _ple_tick(self, now: int) -> None:
        assert self.ple is not None
        for cpu_id in self._online:
            task = self.cpus[cpu_id].rq.curr
            spinning_with_pause = (
                task is not None
                and task.mode is RunMode.SPIN
                and task.profile.spin_uses_pause
            )
            if self.ple.observe(cpu_id, now, spinning_with_pause):
                # The hypervisor briefly deschedules the *vCPU*; the guest
                # scheduler still runs the spinner afterwards, so thread
                # oversubscription is not relieved (Section 2.4) — the only
                # effect is the lost yield window on this vCPU.
                self.cpus[cpu_id].irq_ns += self.config.ple.vcpu_yield_ns

    def charge_irq(self, cpu_id: int, ns: int) -> None:
        """Steal ``ns`` from whatever runs on the CPU (monitor overhead)."""
        cpu = self.cpus[cpu_id]
        cpu.irq_ns += ns
        task = cpu.rq.curr
        if task is not None and task.action_remaining is not None:
            self._sync_current(cpu)
            task.action_remaining += ns

    # ==================================================================
    # Load balancing
    # ==================================================================
    def _online_ids(self):
        """Online cpu ids as an int64 numpy array (cached; invalidated
        on hot-plug)."""
        ids = self._online_np
        if ids is None:
            ids = _soa.np.asarray(self._online, dtype=_soa.np.int64)
            self._online_np = ids
        return ids

    def _idle_pull(self, cpu: CpuState) -> Task | None:
        """Newly-idle balance: steal one runnable task from the busiest CPU."""
        if not self.config.scheduler.idle_balance:
            return None
        busiest: CpuState | None = None
        board = self._soa_board
        if board is not None and len(self._online) >= _soa.VECTOR_MIN_CPUS:
            # Vectorized source selection over the write-through load
            # columns; tie-breaking matches the scalar loop exactly
            # (first strictly-greater maximum in online order).
            busiest_id = _soa.pick_busiest_eligible(
                board, self.cpus, self._online_ids(), cpu.id
            )
            if busiest_id is None:
                return None
            busiest = self.cpus[busiest_id]
        else:
            busiest_load = 1
            for cpu_id in self._online:
                other = self.cpus[cpu_id]
                if other is cpu:
                    continue
                rq = other.rq
                # O(1) existence check: queued runnable == steal candidates
                # modulo pinning/cache-hotness, which _migratable re-filters.
                # (nr_running/nr_queued_runnable spelled out: this loop
                # visits every online CPU on each newly-idle balance.)
                size = rq.tree.size
                load = size + (1 if rq.curr is not None else 0)
                if load > busiest_load and size - rq.nr_blocked > 0:
                    busiest = other
                    busiest_load = load
            if busiest is None:
                return None
        cands = self._migratable(busiest.rq.steal_candidates())
        if not self._policy_cfs:
            cands = list(self.policy.steal_order(cands))
        if not cands:
            return None
        task = cands[int(self._rng_sched.integers(0, len(cands)))]
        busiest.rq.dequeue(task)
        self._relocate_vruntime(task, busiest.rq, cpu.rq)
        self._count_migration(task, cpu.id, wake=False)
        task.last_cpu = cpu.id
        if self.trace.enabled:
            self.trace.emit(self.engine.now, "idle-pull", cpu.id, task.name)
        return task

    def _migratable(self, candidates: list[Task]) -> list[Task]:
        """can_migrate_task: skip pinned tasks and cache-hot tasks (those
        that only just became runnable — e.g. mid group-wakeup)."""
        cold = self.config.scheduler.migration_cold_delay_ns
        now = self.now
        return [
            t
            for t in candidates
            if t.pinned_cpu is None and now - t.state_since >= cold
        ]

    @staticmethod
    def _relocate_vruntime(task: Task, src: CfsRunqueue, dst: CfsRunqueue) -> None:
        task.vruntime = task.vruntime - src.min_vruntime + dst.min_vruntime

    def _migrate_into(self, task: Task, dest: CpuState, count: bool) -> None:
        if count:
            self._count_migration(task, dest.id, wake=False)
        task.last_cpu = dest.id
        if task.state is TaskState.RUNNABLE or task.state is TaskState.VBLOCKED:
            if task.state is TaskState.VBLOCKED:
                task.vb_cpu = dest.id
            dest.rq.enqueue(task)
            self._check_preempt(dest, task)

    def _balance_tick(self, now: int) -> None:
        """Periodic load balancing across online CPUs."""
        if len(self._online) < 2:
            return
        sched = self.config.scheduler
        if self.trace.enabled:
            self.trace.emit(
                now, "balance-scan", -1, None,
                loads=[self.cpus[c].rq.nr_running for c in self._online],
            )
        board = self._soa_board
        vector = (
            board is not None and len(self._online) >= _soa.VECTOR_MIN_CPUS
        )
        for _ in range(4):  # bounded work per tick
            if vector:
                # max()/min() over (load, cpu_id) tuples, vectorized:
                # busiest tie -> largest id, idlest tie -> smallest.
                busiest_load, busiest_id, idlest_load, idlest_id = (
                    _soa.balance_extremes(board, self.cpus,
                                          self._online_ids())
                )
            else:
                loads = [
                    (self.cpus[c].rq.nr_running, c) for c in self._online
                ]
                busiest_load, busiest_id = max(loads)
                idlest_load, idlest_id = min(loads)
            if busiest_load - idlest_load < 2:
                return
            if (busiest_load - idlest_load) <= sched.imbalance_pct * busiest_load:
                return
            src = self.cpus[busiest_id]
            dst = self.cpus[idlest_id]
            cands = self._migratable(src.rq.steal_candidates())
            if not self._policy_cfs:
                cands = list(self.policy.steal_order(cands))
            if not cands:
                return
            task = cands[int(self._rng_sched.integers(0, len(cands)))]
            src.rq.dequeue(task)
            self._relocate_vruntime(task, src.rq, dst.rq)
            self._count_migration(task, dst.id, wake=False)
            task.last_cpu = dst.id
            dst.rq.enqueue(task)
            if self.trace.enabled:
                self.trace.emit(now, "balance", dst.id, task.name, src=src.id)
            if dst.rq.curr is None:
                self._check_preempt(dst, task)

    # ==================================================================
    # epoll helpers (used by server workloads)
    # ==================================================================
    def epoll_post(self, ep: EpollInstance, payload: Any) -> None:
        """Deliver an event (interrupt context, e.g. network RX)."""
        self.epolls.setdefault(id(ep), ep)
        if self.futex_table.waiter_count(ep) > 0:
            self.futex_wake(None, ep, 1, result=[payload])
            ep.events_posted += 1
            ep.events_delivered += 1
        else:
            ep.post(payload)

    # ==================================================================
    # Introspection
    # ==================================================================
    def cpu_utilization_percent(self) -> float:
        """Summed per-CPU utilization in percent (800 = 8 fully busy CPUs)."""
        wall = self.now - self.start_time
        if wall <= 0:
            return 0.0
        total = 0
        for c in self._online:
            cpu = self.cpus[c]
            # Poll time can overlap the busy edges by a few events; a CPU
            # can never exceed 100%.
            total += min(
                wall, cpu.busy_ns + cpu.sched_ns + cpu.irq_ns + cpu.poll_ns
            )
        return 100.0 * total / wall


# ======================================================================
# Action dispatch tables (hot path)
# ======================================================================
# Blocking-primitive entry hooks, keyed by concrete action type.  Each
# entry takes (kernel, task, action) and returns the on-CPU entry cost.
_BLOCKING_ENTRY = {
    A.MutexAcquire: lambda k, t, a: a.mutex.acquire(k, t),
    A.MutexRelease: lambda k, t, a: a.mutex.release(k, t),
    A.MutexEnsure: lambda k, t, a: a.mutex.ensure(k, t),
    A.CondWait: lambda k, t, a: a.cond.wait(k, t),
    A.CondWaitRequeue: lambda k, t, a: a.cond.wait_with(k, t, a.mutex),
    A.CondSignal: lambda k, t, a: a.cond.signal(k, t),
    A.CondBroadcast: lambda k, t, a: a.cond.broadcast(k, t),
    A.CondBroadcastRequeue: (
        lambda k, t, a: a.cond.broadcast_requeue(k, t, a.mutex)
    ),
    A.BarrierWait: lambda k, t, a: a.barrier.wait(k, t),
    A.SemWait: lambda k, t, a: a.sem.wait(k, t),
    A.SemPost: lambda k, t, a: a.sem.post(k, t),
    A.RwAcquireRead: lambda k, t, a: a.lock.acquire_read(k, t),
    A.RwReleaseRead: lambda k, t, a: a.lock.release_read(k, t),
    A.RwAcquireWrite: lambda k, t, a: a.lock.acquire_write(k, t),
    A.RwReleaseWrite: lambda k, t, a: a.lock.release_write(k, t),
}

# Concrete action type -> unbound Kernel handler.  ``_start_action`` is a
# single dict lookup; subclasses (none in-tree) take the isinstance
# fallback in ``_start_action_generic`` and are cached here afterwards.
_ACTION_DISPATCH = {
    A.Compute: Kernel._act_compute,
    A.MemTraverse: Kernel._act_memtraverse,
    A.AtomicRmw: Kernel._act_atomic_rmw,
    A.Yield: Kernel._act_syscall_stub,
    A.SleepNs: Kernel._act_syscall_stub,
    A.SpinAcquire: Kernel._act_spin_acquire,
    A.SpinRelease: Kernel._act_spin_release,
    A.SpinUntilFlag: Kernel._act_spin_until_flag,
    A.FlagSet: Kernel._act_flag_set,
    A.EpollWait: Kernel._act_epoll_wait,
}
for _cls in _BLOCKING_ENTRY:
    _ACTION_DISPATCH[_cls] = Kernel._act_blocking
del _cls

# The most common action class, special-cased before the dict lookup.
_COMPUTE = A.Compute

# Action classes whose completion is just "clear and continue" — i.e.
# everything except Yield/SleepNs (which reschedule or park) — so
# _cpu_event can skip the _complete_action frame when no park is pending.
# Subclasses (none in-tree) miss this set and take the full path.
_PLAIN_COMPLETE = frozenset(
    cls for cls in _ACTION_DISPATCH if cls not in (A.Yield, A.SleepNs)
)


def _cycle_support() -> dict:
    """Singletons the C KernelCycle needs to mirror the hot cycle.

    Handing these over explicitly (rather than having C import them)
    keeps the extension free of repro-internal imports and guarantees
    the C path compares against the exact same objects this module uses.
    """
    return {
        "RUNNING": TaskState.RUNNING,
        "RUNNABLE": TaskState.RUNNABLE,
        "SLEEPING": TaskState.SLEEPING,
        "VBLOCKED": TaskState.VBLOCKED,
        "MODE_COMPUTE": RunMode.COMPUTE,
        "Compute": A.Compute,
        "Yield": A.Yield,
        "PLAIN_COMPLETE": _PLAIN_COMPLETE,
        "ACTION_DISPATCH": _ACTION_DISPATCH,
        "ProgramError": ProgramError,
        "VB_SENTINEL": VB_SENTINEL,
    }
