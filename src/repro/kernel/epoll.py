"""epoll instance: event-based blocking for cloud workloads (Section 4.2).

Memcached worker threads block in ``epoll_wait`` until client requests
arrive.  The instance holds a FIFO of posted events; blocking and waking go
through the same futex machinery (and hence the same virtual-blocking
optimization — the paper implemented VB in epoll by the same sleep-queue
removal and schedule-skipping).
"""

from __future__ import annotations

from collections import deque
from typing import Any


class EpollInstance:
    """A simulated epoll file descriptor set."""

    __slots__ = (
        "name",
        "pending",
        "events_posted",
        "events_delivered",
        "spurious",
    )

    def __init__(self, name: str = "epoll"):
        self.name = name
        self.pending: deque[Any] = deque()
        self.events_posted = 0
        self.events_delivered = 0
        # Spurious wakeups injected by the chaos harness: the waiter is
        # woken with an empty batch and must loop back into epoll_wait.
        self.spurious = 0

    def post(self, payload: Any) -> None:
        self.pending.append(payload)
        self.events_posted += 1

    def take(self, max_events: int) -> list[Any]:
        batch = []
        while self.pending and len(batch) < max_events:
            batch.append(self.pending.popleft())
        self.events_delivered += len(batch)
        return batch

    def __len__(self) -> int:
        return len(self.pending)
