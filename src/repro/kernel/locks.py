"""Serialization timelines for kernel-internal locks.

The vanilla wakeup path serializes on the futex hash-bucket lock and on the
target CPU's runqueue lock (Figure 5, steps 2/5/6).  We do not simulate these
locks with blocking tasks — their critical sections are sub-microsecond —
but their *serialization* is the paper's key inefficiency, so each lock keeps
a busy-until timeline: an acquirer arriving while the lock is held waits for
the remaining hold time, and that wait is charged to the acquirer.  This
yields genuine convoy behavior when many wakeups target the same runqueue.
"""

from __future__ import annotations


class SimLockTimeline:
    """A kernel spinlock modeled as a busy-until timeline."""

    __slots__ = ("name", "busy_until", "acquisitions", "contended_ns")

    def __init__(self, name: str):
        self.name = name
        self.busy_until: int = 0
        self.acquisitions: int = 0
        self.contended_ns: int = 0

    def acquire(self, now: int, hold_ns: int) -> int:
        """Acquire at ``now``, hold for ``hold_ns``.

        Returns the total cost to the acquirer (queueing wait + hold).
        """
        busy = self.busy_until
        start = now if now >= busy else busy
        wait = start - now
        self.busy_until = start + hold_ns
        self.acquisitions += 1
        self.contended_ns += wait
        return wait + hold_ns

    def would_wait(self, now: int) -> int:
        return max(0, self.busy_until - now)
