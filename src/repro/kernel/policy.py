"""Scheduler-policy interface: the policy/mechanism split.

``kernel.Kernel`` owns the *mechanism* — event plumbing, vruntime
accounting, VB sentinel parking, BWD deschedules, migration costing —
and delegates every scheduling *decision* to a :class:`SchedPolicy`:
which task runs next, where a wakeup lands in the queue, whether a
wakeup or an expired slice preempts, how long a slice is, and in what
order the balancer considers steal candidates.

Policies register themselves with :func:`register`; the registry drives
``--policy`` / ``REPRO_POLICY`` selection (mirroring the ``--backend``
plumbing in :mod:`repro.fastpath`), the ``repro list`` table, and the
generated comparison table in ``docs/scheduling.md``.  The default
``cfs`` policy reproduces the kernel's historical inlined behavior
bit-for-bit; see ``docs/scheduling.md`` for the full hook contract and
a write-a-policy walkthrough.
"""

from __future__ import annotations

import os

from ..errors import ConfigError


class SchedPolicy:
    """Base class and hook contract for scheduling policies.

    One instance is created per :class:`~repro.kernel.Kernel` and
    ``configure()``-d with the kernel's ``SchedulerConfig``.  Hooks are
    called under simulated time; they must be deterministic (no wall
    clock, no unseeded randomness) and must never touch a task whose
    ``thread_state`` flag is set — VB-parked tasks are re-keyed at the
    sentinel tail by the runqueue itself and are invisible to policy
    decisions by construction.

    The base-class implementations are the CFS behaviors so that a
    subclass overriding nothing is already a valid (CFS-like) policy;
    ``docs/scheduling.md`` documents each hook's invariants.
    """

    #: registry key, CLI value, and desc/cache-key token
    name = "abstract"
    #: scheduling discipline family shown in docs ("fair", "deadline", ...)
    sched_class = "fair"
    #: one-line summary for ``repro list`` / docs
    description = "abstract base policy"
    #: human-readable slice model for the generated comparison table
    slice_model = "sched_latency / nr_schedulable, clamped to " \
        "[min_granularity, regular_slice]"
    #: human-readable preemption rule for the generated comparison table
    preempt_rule = "wakeup: vruntime gap > wakeup_granularity; " \
        "tick: any queued runnable"
    #: when True the kernel keeps its historical inlined CFS fast path
    #: (bit-identical, fastpath-eligible) instead of calling these hooks
    inline_fast_path = False

    def configure(self, sched) -> None:
        """Bind the kernel's ``SchedulerConfig`` (slice/latency knobs)."""
        self.sched = sched

    # -- queue keying -------------------------------------------------
    def queue_key(self, task) -> int:
        """Scalar sort key under which ``task`` is (re-)enqueued.

        Called by the runqueue on every enqueue/requeue of a runnable
        task (never for VB-parked tasks — those get the sentinel key).
        May refresh per-task policy state (e.g. renew an EEVDF
        deadline).  Must return a value far below ``VB_SENTINEL`` so
        parked tasks always sort behind every runnable.
        """
        return task.vruntime

    def expected_key(self, task) -> int | None:
        """Pure predicted key for the invariant checker (no mutation).

        Must equal the primary key ``task`` is currently queued under,
        or ``None`` to skip the check.  Unlike :meth:`queue_key` this
        is called from the read-only invariant checker and must not
        change any state.
        """
        return task.vruntime

    # -- pick / place / preempt ---------------------------------------
    def pick_next(self, rq):
        """Dequeue and return the task to run next (leftmost by default).

        Only called when at least one queued task is runnable; the
        kernel handles the all-parked poll-idle case itself.
        """
        return rq.pick_next()

    def place_wakeup(self, rq, task) -> None:
        """Adjust ``task``'s key state before a fresh-wake enqueue.

        CFS grants half a latency window of sleeper credit, clamped so
        sleepers can never bank runtime.  Not called on VB wakes —
        in-place re-keying is the mechanism VB exists for.
        """
        rq.place_vruntime(task, self.sched.sched_latency_ns // 2)

    def check_preempt(self, curr, woken) -> bool:
        """Should ``woken`` (just enqueued on curr's CPU) preempt now?"""
        return curr.vruntime - woken.vruntime > self.sched.wakeup_granularity_ns

    def tick_preempt(self, rq, curr) -> bool:
        """Slice expired for ``curr``: reschedule, or extend its slice?"""
        head = rq.peek_next()
        return head is not None and not head.thread_state

    def slice_ns(self, nr_schedulable: int) -> int:
        """Length of the next time slice given the schedulable count."""
        sched = self.sched
        sl = sched.sched_latency_ns // (
            nr_schedulable if nr_schedulable > 1 else 1
        )
        if sl > sched.regular_slice_ns:
            sl = sched.regular_slice_ns
        if sl < sched.min_granularity_ns:
            sl = sched.min_granularity_ns
        return sl

    # -- balancing ----------------------------------------------------
    def steal_order(self, candidates):
        """Order migratable candidates before the balancer's seeded pick.

        The kernel draws from this sequence with its scheduler RNG;
        returning it unchanged (default) preserves CFS behavior.
        """
        return candidates


# ----------------------------------------------------------------------
# registry

POLICIES: dict[str, type[SchedPolicy]] = {}


def register(cls: type[SchedPolicy]) -> type[SchedPolicy]:
    """Class decorator: add a policy to the registry under ``cls.name``."""
    if cls.name in POLICIES:
        raise ValueError(f"duplicate policy name {cls.name!r}")
    POLICIES[cls.name] = cls
    return cls


def available() -> tuple[str, ...]:
    """Registered policy names, sorted (drives CLI choices and docs)."""
    return tuple(sorted(POLICIES))


def validate_policy_name(name: str) -> str:
    if name not in POLICIES:
        raise ConfigError(
            f"unknown scheduling policy {name!r}; "
            f"available: {', '.join(available())}"
        )
    return name


def get_policy(name: str) -> SchedPolicy:
    """Instantiate the registered policy ``name`` (ConfigError if unknown)."""
    return POLICIES[validate_policy_name(name)]()


# ----------------------------------------------------------------------
# process-global default + CLI plumbing (mirrors repro.fastpath's
# --backend / REPRO_BACKEND selection)


def current_policy() -> str:
    """The process-global default policy name."""
    return _policy


def set_default_policy(name: str) -> None:
    """Select the default policy for kernels that don't pin one.

    ``SimConfig.policy`` (and the ``"policy"`` desc key derived from
    it) always wins over this process-global default.
    """
    global _policy
    _policy = validate_policy_name(name)


def add_policy_argument(parser) -> None:
    """Attach the shared ``--policy`` flag to a subcommand parser."""
    parser.add_argument(
        "--policy", choices=list(available()), default=None,
        help="scheduling policy for every kernel this command builds "
             "(default: REPRO_POLICY or cfs); see docs/scheduling.md",
    )


def apply_policy_argument(args) -> None:
    """Honor a parsed ``--policy`` flag (no-op when absent/unset)."""
    policy = getattr(args, "policy", None)
    if policy:
        set_default_policy(policy)


# ----------------------------------------------------------------------
# generated docs

POLICY_TABLE_BEGIN = "<!-- BEGIN GENERATED: policy-table -->"
POLICY_TABLE_END = "<!-- END GENERATED: policy-table -->"


def render_policy_table() -> str:
    """Markdown comparison table of every registered policy.

    Embedded between the ``policy-table`` markers in
    ``docs/scheduling.md`` and drift-gated by ``repro docs --check``
    (same contract as ``docs/cli.md``).
    """
    lines = [
        "| policy | class | sched class | slice model | preemption rule |",
        "|---|---|---|---|---|",
    ]
    for name in available():
        cls = POLICIES[name]
        lines.append(
            f"| `{name}` | `{cls.__name__}` | {cls.sched_class} "
            f"| {cls.slice_model} | {cls.preempt_rule} |"
        )
    return "\n".join(lines) + "\n"


def update_policy_table(text: str) -> str:
    """Replace the generated block in ``docs/scheduling.md``'s text."""
    begin = text.index(POLICY_TABLE_BEGIN) + len(POLICY_TABLE_BEGIN)
    end = text.index(POLICY_TABLE_END)
    return text[:begin] + "\n" + render_policy_table() + text[end:]


# Populate the registry.  This import is at the bottom on purpose:
# policy implementations subclass SchedPolicy and call register(), so
# both must exist before the package import runs.
from . import policies as _policies  # noqa: E402,F401

_policy = os.environ.get("REPRO_POLICY", "cfs").strip() or "cfs"
if _policy not in POLICIES:  # pragma: no cover - import-time guard
    raise ValueError(
        f"REPRO_POLICY={_policy!r} is not a registered policy "
        f"(available: {', '.join(available())})"
    )
