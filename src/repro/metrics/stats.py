"""Latency/throughput statistics helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (what mutilate reports)."""
    if not len(values):
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} out of [0, 100]")
    arr = np.sort(np.asarray(values, dtype=np.float64))
    rank = max(0, min(len(arr) - 1, int(np.ceil(pct / 100.0 * len(arr))) - 1))
    return float(arr[rank])


@dataclass(frozen=True)
class LatencySummary:
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    # p999 was added for SLO tracking after artifacts with the older
    # six-field shape were already in the wild; the default keeps
    # ``LatencySummary(**old_dict)`` reconstruction working.
    p999: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
        }


def summarize_latencies(values: Sequence[float]) -> LatencySummary:
    if not len(values):
        raise ValueError("no latency samples")
    arr = np.asarray(values, dtype=np.float64)
    return LatencySummary(
        count=len(arr),
        mean=float(arr.mean()),
        p50=percentile(arr, 50),
        p95=percentile(arr, 95),
        p99=percentile(arr, 99),
        max=float(arr.max()),
        p999=percentile(arr, 99.9),
    )
