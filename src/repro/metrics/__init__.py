"""Run statistics and summary helpers."""

from .stats import percentile, summarize_latencies, LatencySummary
from .collector import CpuBreakdown, RunStats, collect

__all__ = ["percentile", "summarize_latencies", "LatencySummary", "CpuBreakdown", "RunStats", "collect"]
