"""Collects end-of-run statistics from a kernel (Table 1's columns)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


@dataclass(frozen=True)
class CpuBreakdown:
    """Per-CPU time accounting (all in nanoseconds of the run)."""

    cpu_id: int
    busy_ns: int
    sched_ns: int
    irq_ns: int
    stall_ns: int
    poll_ns: int

    def utilization_pct(self, wall_ns: int) -> float:
        if wall_ns <= 0:
            return 0.0
        used = min(
            wall_ns, self.busy_ns + self.sched_ns + self.irq_ns + self.poll_ns
        )
        return 100.0 * used / wall_ns


@dataclass(frozen=True)
class RunStats:
    """Aggregate statistics of one simulation run."""

    wall_ns: int
    cpu_utilization_pct: float  # summed per-CPU percent (800 = 8 busy CPUs)
    migrations_in_node: int
    migrations_cross_node: int
    wake_migrations: int
    balance_migrations: int
    context_switches: int
    voluntary_switches: int
    involuntary_switches: int
    blocks: int
    wakeups: int
    total_cpu_ns: int
    total_spin_ns: int
    total_wait_ns: int
    total_sleep_ns: int
    mean_wakeup_latency_ns: float
    vb_blocks: int
    vanilla_blocks: int
    bwd_deschedules: int
    bwd_sensitivity: float
    bwd_specificity: float
    # Schedstats/PSI totals (docs/telemetry.md).  Deliberately NOT part of
    # the digested result surface (runners/parallel._stats_dict) — they
    # ride along for callers holding the RunStats object, while golden
    # digests stay byte-identical with telemetry on or off.
    psi_some_ns: int = 0
    psi_full_ns: int = 0
    slice_expiries: int = 0
    futex_waits: int = 0
    rq_depth_integral_ns: int = 0
    per_cpu: tuple = ()
    # Auxiliary metrics as nested (key, ((stat, value), ...)) tuples — fully
    # immutable, so the frozen dataclass stays hashable and the value
    # round-trips losslessly through the JSON result cache (the previous
    # mutable-dict default broke both).
    extra: tuple = ()

    @property
    def total_migrations(self) -> int:
        return self.migrations_in_node + self.migrations_cross_node

    @property
    def extra_dict(self) -> dict:
        """``extra`` as the nested dict the JSON artifacts carry."""
        return {key: dict(items) for key, items in self.extra}


def collect(kernel: "Kernel") -> RunStats:
    tasks = kernel.tasks
    wakeups = sum(t.stats.nr_wakeups for t in tasks)
    wake_lat = sum(t.stats.wakeup_latency_ns for t in tasks)
    bwd = kernel.bwd
    kernel.obs_report()  # flush histograms to any enclosing observe()
    psi_some = psi_full = depth_integral = 0
    if getattr(kernel, "_schedstats", False):
        kernel._psi_update(kernel.now)  # settle PSI clocks to "now"
        psi_some, psi_full = kernel.psi_some_ns, kernel.psi_full_ns
        kernel._depth_delta(kernel.now, 0)  # settle the depth integral
        depth_integral = kernel.rq_depth_integral_ns
    extra = tuple(
        (f"hist:{name}", tuple(sorted(hist.summary().items())))
        for name, hist in sorted(kernel.hists.items())
        if hist.count
    )
    return RunStats(
        wall_ns=kernel.now - kernel.start_time,
        cpu_utilization_pct=kernel.cpu_utilization_percent(),
        migrations_in_node=kernel.migrations_in_node,
        migrations_cross_node=kernel.migrations_cross_node,
        wake_migrations=kernel.wake_migrations,
        balance_migrations=kernel.balance_migrations,
        context_switches=sum(t.stats.nr_switches for t in tasks),
        voluntary_switches=sum(t.stats.nr_voluntary for t in tasks),
        involuntary_switches=sum(t.stats.nr_involuntary for t in tasks),
        blocks=sum(t.stats.nr_blocks for t in tasks),
        wakeups=wakeups,
        total_cpu_ns=sum(t.stats.cpu_ns for t in tasks),
        total_spin_ns=sum(t.stats.spin_ns for t in tasks),
        total_wait_ns=sum(t.stats.wait_ns for t in tasks),
        total_sleep_ns=sum(t.stats.sleep_ns for t in tasks),
        mean_wakeup_latency_ns=(wake_lat / wakeups) if wakeups else 0.0,
        vb_blocks=kernel.vb_policy.stats.vb_blocks,
        vanilla_blocks=kernel.vb_policy.stats.vanilla_blocks,
        bwd_deschedules=bwd.stats.deschedules if bwd else 0,
        bwd_sensitivity=bwd.stats.sensitivity if bwd else 0.0,
        bwd_specificity=bwd.stats.specificity if bwd else 1.0,
        psi_some_ns=psi_some,
        psi_full_ns=psi_full,
        slice_expiries=sum(t.stats.nr_slice_expiries for t in tasks),
        futex_waits=sum(t.stats.nr_futex_waits for t in tasks),
        rq_depth_integral_ns=depth_integral,
        per_cpu=tuple(
            CpuBreakdown(
                cpu_id=c,
                busy_ns=kernel.cpus[c].busy_ns,
                sched_ns=kernel.cpus[c].sched_ns,
                irq_ns=kernel.cpus[c].irq_ns,
                stall_ns=kernel.cpus[c].stall_ns,
                poll_ns=kernel.cpus[c].poll_ns,
            )
            for c in kernel.online_cpus()
        ),
        extra=extra,
    )
