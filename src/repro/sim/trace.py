"""Bounded, filterable event tracing.

The kernel emits trace points (context switches, wakeups, migrations, BWD
detections, futex contention, ...) through a :class:`TraceRecorder`.
Recording is off by default — the metrics collector consumes counters
instead — but tests, the examples, and the ``trace``/``--trace`` CLI paths
turn it on to capture full scheduling timelines.

The recorder is a ring buffer: a long run records the *last* ``capacity``
events and counts what it dropped, so tracing a multi-minute simulation
cannot exhaust memory.  Raw events can be paired into *spans* (a task's
time on CPU between dispatch and preemption, a park→wake blocked window,
a BWD spin window ending in a deschedule) and exported as JSONL or Chrome
``trace_event`` JSON for Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

#: Default ring capacity — at ~90 bytes/event this bounds a fully-traced
#: run to low hundreds of MB even in the pathological case.
DEFAULT_CAPACITY = 1_000_000

#: Event kinds that end the current task's occupancy of a CPU.
_RUN_CLOSERS = frozenset(
    {"dispatch", "park", "exit", "preempt", "bwd-deschedule"}
)


@dataclass(frozen=True)
class TraceEvent:
    time: int
    kind: str
    cpu: int
    task: str | None
    detail: dict[str, Any]


@dataclass(frozen=True)
class Span:
    """A derived interval: ``[start, end)`` of ``task`` doing ``kind``."""

    kind: str  # "run" | "blocked" | "bwd-spin"
    cpu: int
    task: str | None
    start: int
    end: int
    end_kind: str  # the event kind that closed the span
    detail: dict[str, Any]

    @property
    def duration(self) -> int:
        return self.end - self.start


class TraceRecorder:
    """Collects :class:`TraceEvent` records in a bounded ring buffer."""

    def __init__(
        self,
        enabled: bool = False,
        kinds: set[str] | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.enabled = enabled
        self.kinds = kinds  # None = record everything
        self.capacity = capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(
        self,
        time: int,
        kind: str,
        cpu: int,
        task: str | None = None,
        **detail: Any,
    ) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(TraceEvent(time, kind, cpu, task, detail))

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.kind == kind)

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -----------------------------------------------------------------
    # span derivation
    # -----------------------------------------------------------------
    def run_spans(self) -> list[Span]:
        """Per-CPU occupancy intervals: dispatch → next dispatch/park/
        exit/preempt/bwd-deschedule on the same CPU.  Spans still open at
        the end of the buffer are closed at the last recorded time."""
        open_by_cpu: dict[int, TraceEvent] = {}
        spans: list[Span] = []
        last_time = 0
        for e in self.events:
            last_time = e.time
            if e.kind == "dispatch" or (
                e.kind in _RUN_CLOSERS and e.cpu in open_by_cpu
            ):
                prev = open_by_cpu.pop(e.cpu, None)
                if prev is not None and e.time > prev.time:
                    spans.append(
                        Span("run", prev.cpu, prev.task, prev.time,
                             e.time, e.kind, prev.detail)
                    )
            if e.kind == "dispatch":
                open_by_cpu[e.cpu] = e
        for prev in open_by_cpu.values():
            if last_time > prev.time:
                spans.append(
                    Span("run", prev.cpu, prev.task, prev.time,
                         last_time, "eof", prev.detail)
                )
        spans.sort(key=lambda s: (s.start, s.cpu))
        return spans

    def block_spans(self) -> list[Span]:
        """Per-task blocked windows: park → wake of the same task."""
        open_by_task: dict[str, TraceEvent] = {}
        spans: list[Span] = []
        for e in self.events:
            if e.kind == "park" and e.task is not None:
                open_by_task[e.task] = e
            elif e.kind == "wake" and e.task in open_by_task:
                p = open_by_task.pop(e.task)
                spans.append(
                    Span("blocked", p.cpu, e.task, p.time, e.time,
                         "wake", {**p.detail, **e.detail})
                )
        return spans

    def bwd_spans(self) -> list[Span]:
        """Spin windows ending in a BWD deschedule, synthesized from the
        ``spin_ns`` detail of each ``bwd-deschedule`` event."""
        spans = []
        for e in self.events:
            if e.kind == "bwd-deschedule":
                spin = int(e.detail.get("spin_ns", 0))
                if spin > 0:
                    spans.append(
                        Span("bwd-spin", e.cpu, e.task, e.time - spin,
                             e.time, "bwd-deschedule", e.detail)
                    )
        return spans

    # -----------------------------------------------------------------
    # exporters
    # -----------------------------------------------------------------
    def to_csv(self, path: str) -> int:
        """Dump the recorded events as CSV; returns the row count.

        The detail column is a JSON object — values containing ``;`` or
        ``=`` survive round-tripping (the old ``k=v;k=v`` encoding did
        not).
        """
        import csv
        import json

        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["time_ns", "kind", "cpu", "task", "detail"])
            for e in self.events:
                w.writerow(
                    [e.time, e.kind, e.cpu, e.task or "",
                     json.dumps(e.detail, sort_keys=True,
                                separators=(",", ":"))]
                )
        return len(self.events)

    def to_jsonl(self, path: str, meta: dict[str, Any] | None = None) -> int:
        from ..obs.export import write_jsonl

        return write_jsonl(self, path, meta)

    def to_chrome(self, path: str) -> int:
        from ..obs.export import write_chrome

        return write_chrome(self, path)
