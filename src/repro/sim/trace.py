"""Lightweight event tracing.

The kernel emits trace points (context switches, wakeups, migrations, BWD
detections, ...) through a :class:`TraceRecorder`.  Recording is off by
default — the metrics collector consumes counters instead — but tests and the
examples turn it on to assert on exact event sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceEvent:
    time: int
    kind: str
    cpu: int
    task: str | None
    detail: dict[str, Any]


class TraceRecorder:
    """Collects :class:`TraceEvent` records when enabled."""

    def __init__(self, enabled: bool = False, kinds: set[str] | None = None):
        self.enabled = enabled
        self.kinds = kinds  # None = record everything
        self.events: list[TraceEvent] = []

    def emit(
        self,
        time: int,
        kind: str,
        cpu: int,
        task: str | None = None,
        **detail: Any,
    ) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.events.append(TraceEvent(time, kind, cpu, task, detail))

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.kind == kind)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        self.events.clear()

    def to_csv(self, path: str) -> int:
        """Dump the recorded events as CSV; returns the row count."""
        import csv

        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["time_ns", "kind", "cpu", "task", "detail"])
            for e in self.events:
                w.writerow(
                    [e.time, e.kind, e.cpu, e.task or "",
                     ";".join(f"{k}={v}" for k, v in e.detail.items())]
                )
        return len(self.events)
