"""Discrete-event engine with an integer-nanosecond clock.

The engine is a single priority queue of ``(time, seq, handle)`` entries.
Cancellation is lazy: :class:`EventHandle` carries a ``cancelled`` flag and
popped events whose handle was cancelled are dropped.  ``seq`` makes ordering
of simultaneous events deterministic (FIFO in scheduling order), which in turn
makes every simulation bit-reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError


class EventHandle:
    """Handle to a scheduled event; ``cancel()`` prevents its callback."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        # Drop references so cancelled events do not pin large objects
        # while they wait to be popped from the heap.
        self.fn = _noop
        self.args = ()


def _noop(*_args) -> None:  # pragma: no cover - trivial
    return None


class Engine:
    """Event loop owning the simulated clock."""

    __slots__ = ("now", "_heap", "_seq", "_events_run")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._seq = 0
        self._events_run = 0

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the queue."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args) -> EventHandle:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        handle = EventHandle(time, fn, args)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        return handle

    def schedule(self, delay: int, fn: Callable[..., Any], *args) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def peek_time(self) -> int | None:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next live event. Returns False if none remain."""
        while self._heap:
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            self._events_run += 1
            handle.fn(*handle.args)
            return True
        return False

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``stop_when()`` becomes true (checked between events)."""
        count = 0
        while True:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and count >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}; "
                    "likely a livelock in the simulated system"
                )
            t = self.peek_time()
            if t is None:
                return
            if until is not None and t > until:
                self.now = until
                return
            self.step()
            count += 1
