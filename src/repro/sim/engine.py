"""Discrete-event engine with an integer-nanosecond clock.

Events live in a *bucketed timer wheel*: a dict mapping each distinct
deadline to a FIFO list of handles, plus a heap of the distinct deadlines
themselves.  Because the per-deadline lists are appended in scheduling
order, draining the wheel bucket-by-bucket replays events in exactly
``(time, schedule order)`` — the same total order as the classic
``(time, seq, handle)`` heap, so every simulation stays bit-reproducible
for a fixed seed.  The wheel coalesces heap traffic: scheduling onto an
existing deadline is one dict lookup and a list append (no heap churn),
which is the common case for per-CPU tick events that repeatedly land on
the same slice boundary or action deadline.

Cancellation is lazy: :class:`EventHandle` carries a ``cancelled`` flag and
popped events whose handle was cancelled are dropped.  The time of the next
*live* event is cached (``_next_time``) so back-to-back ``peek_time`` calls
and the run loop's bound checks do not rescan cancelled prefixes.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from time import monotonic
from typing import Any, Callable

from ..errors import SimulationError, SoftTimeoutError

# ---------------------------------------------------------------------------
# Soft wall-clock deadline (SIGALRM fallback)
# ---------------------------------------------------------------------------
# ``signal.SIGALRM``/``setitimer`` do not exist on every platform and never
# fire in non-main threads, so an in-worker alarm can silently vanish and a
# spec runs unbounded.  As a portable backstop the run loop polls this
# module-level deadline every ``_SOFT_DEADLINE_MASK + 1`` events and raises
# :class:`SoftTimeoutError` once it passes.  The poll only covers simulated
# work (an engine must be running events); host-level sleeps still need a
# real alarm.  Process-global by design: one spec runs per worker process.

_SOFT_DEADLINE: float | None = None
_SOFT_DEADLINE_MASK = 1023  # poll every 1024 events; keeps the hot loop cheap

# Alternate run loops (the C fast backend) poll their own copy of the
# deadline; they register a listener here so arm/disarm reaches every
# engine implementation in the process.
_DEADLINE_LISTENERS: list[Callable[[float | None], None]] = []


def add_soft_deadline_listener(fn: Callable[[float | None], None]) -> None:
    """Register ``fn(absolute_monotonic_deadline_or_None)``; it is called
    on every :func:`set_soft_deadline` / :func:`clear_soft_deadline`."""
    if fn not in _DEADLINE_LISTENERS:
        _DEADLINE_LISTENERS.append(fn)


def set_soft_deadline(timeout_s: float) -> None:
    """Arm a wall-clock deadline ``timeout_s`` seconds from now."""
    global _SOFT_DEADLINE
    _SOFT_DEADLINE = monotonic() + timeout_s
    for fn in _DEADLINE_LISTENERS:
        fn(_SOFT_DEADLINE)


def clear_soft_deadline() -> None:
    """Disarm the soft deadline (idempotent)."""
    global _SOFT_DEADLINE
    _SOFT_DEADLINE = None
    for fn in _DEADLINE_LISTENERS:
        fn(None)


class EventHandle:
    """Handle to a scheduled event; ``cancel()`` prevents its callback."""

    __slots__ = ("time", "fn", "args", "cancelled", "_engine")

    def __init__(
        self,
        time: int,
        fn: Callable[..., Any],
        args: tuple,
        engine: "Engine | None" = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        # The owning engine keeps a live-event counter so ``pending`` is
        # O(1); tell it this event will never fire.  ``_engine`` is cleared
        # once the event fires, so a late cancel() cannot double-decrement.
        engine = self._engine
        self._engine = None
        if engine is not None:
            engine._live -= 1
            if engine._next_time is not None and self.time <= engine._next_time:
                # The cached next-live time may have pointed at this event.
                engine._next_time = None
            # Wheel-pollution guard: cancelled-only deadlines otherwise
            # sit in the deadline heap until drain.  Once live events
            # fall below half the queued population, rebuild the wheel
            # without the dead weight (FIFO order within each bucket is
            # preserved, so the event order cannot change).
            if engine._queued > 64 and engine._live * 2 < engine._queued:
                engine._compact()
        # Drop references so cancelled events do not pin large objects
        # while they wait to be popped from the heap.
        self.fn = _noop
        self.args = ()


def _noop(*_args) -> None:  # pragma: no cover - trivial
    return None


_new_handle = EventHandle.__new__


class Engine:
    """Event loop owning the simulated clock."""

    __slots__ = (
        "now",
        "_times",
        "_buckets",
        "_head",
        "_head_idx",
        "_head_time",
        "_events_run",
        "_live",
        "_queued",
        "_next_time",
        "on_event",
    )

    def __init__(self) -> None:
        self.now: int = 0
        # Timer wheel: distinct deadlines (min-heap) -> FIFO handle lists.
        self._times: list[int] = []
        self._buckets: dict[int, list[EventHandle]] = {}
        # The bucket currently being drained (popped off ``_buckets``).
        self._head: list[EventHandle] | None = None
        self._head_idx = 0
        self._head_time = 0
        self._events_run = 0
        self._live = 0
        # Entries currently sitting in ``_buckets`` (live or cancelled);
        # the denominator of the compaction trigger in ``cancel()``.
        self._queued = 0
        self._next_time: int | None = None  # cached next-live-event time
        # Post-event hook: called (no args) after each fired event.  Used
        # by the chaos invariant checker; must be installed before run().
        self.on_event: Callable[[], None] | None = None

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the queue (O(1):
        a live counter maintained on schedule/cancel/fire, so kernels that
        poll it do not go quadratic in long runs)."""
        return self._live

    def recount_live(self) -> int:
        """From-scratch count of not-yet-cancelled queued events.

        O(queue) — used by the invariant checker to cross-check the O(1)
        ``pending`` counter; never called on the hot path.
        """
        n = sum(
            1
            for bucket in self._buckets.values()
            for h in bucket
            if not h.cancelled
        )
        head = self._head
        if head is not None:
            n += sum(1 for h in head[self._head_idx :] if not h.cancelled)
        return n

    def schedule_at(self, time: int, fn: Callable[..., Any], *args) -> EventHandle:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        # Build the handle without the __init__ call frame — this is the
        # single most-executed allocation in a simulation.
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.fn = fn
        handle.args = args
        handle.cancelled = False
        handle._engine = self
        head = self._head
        if head is not None and time < self._head_time:
            # The drain cursor holds a bucket that is no longer the
            # earliest deadline (peek_time()/run(until) pulled it before
            # this earlier event existed).  Push its remainder back into
            # the wheel so deadlines keep firing in order; entries it
            # re-queues were scheduled before anything already bucketed
            # at that time, so they go in front.
            rest = head[self._head_idx:]
            self._head = None
            if rest:
                ht = self._head_time
                existing = self._buckets.get(ht)
                if existing is None:
                    self._buckets[ht] = rest
                    heappush(self._times, ht)
                else:
                    existing[:0] = rest
                self._queued += len(rest)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [handle]
            heappush(self._times, time)
        else:
            bucket.append(handle)
        self._live += 1
        self._queued += 1
        nt = self._next_time
        if nt is not None and time < nt:
            self._next_time = time
        return handle

    def schedule(self, delay: int, fn: Callable[..., Any], *args) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def _advance_head(self) -> EventHandle | None:
        """Return the next live handle without firing it, advancing past
        cancelled entries and exhausted buckets; None when drained."""
        while True:
            head = self._head
            if head is not None:
                idx = self._head_idx
                n = len(head)
                while idx < n:
                    handle = head[idx]
                    if handle.cancelled:
                        idx += 1
                        continue
                    self._head_idx = idx
                    return handle
                self._head = None
            times = self._times
            if not times:
                self._next_time = None
                return None
            t = heappop(times)
            head = self._buckets.pop(t)
            self._head = head
            self._head_idx = 0
            self._head_time = t
            self._queued -= len(head)

    def _compact(self) -> None:
        """Rebuild the wheel without cancelled entries.

        Cancel-heavy workloads (slice-expiry churn, torn-down timers)
        otherwise leave cancelled-only deadlines in the deadline heap
        until drain reaches them; each costs a heappop + dict pop for
        nothing.  Filtering preserves per-bucket FIFO order and bucket
        keys stay unique, so the drain order is untouched.  The bucket
        currently being drained (``_head``) is left alone — it is at
        most one deadline's worth of entries.

        In-place mutation of ``_times``/``_buckets`` on purpose: the
        ``run()`` loop holds local aliases to both.
        """
        buckets = self._buckets
        kept = 0
        for t in list(buckets):
            bucket = buckets[t]
            live = [h for h in bucket if not h.cancelled]
            if not live:
                del buckets[t]
            else:
                if len(live) != len(bucket):
                    buckets[t] = live
                kept += len(live)
        self._times[:] = buckets.keys()
        heapify(self._times)
        self._queued = kept

    def peek_time(self) -> int | None:
        """Time of the next live event, or None if the queue is empty."""
        nt = self._next_time
        if nt is not None:
            return nt
        handle = self._advance_head()
        if handle is None:
            return None
        self._next_time = handle.time
        return handle.time

    def step(self) -> bool:
        """Run the next live event. Returns False if none remain."""
        handle = self._advance_head()
        if handle is None:
            return False
        self._head_idx += 1
        self._next_time = None
        self.now = handle.time
        self._events_run += 1
        self._live -= 1
        # Mark consumed: a late cancel() is a no-op, and owners holding the
        # handle can see it needs no cancellation (one flag test, no call).
        handle.cancelled = True
        handle._engine = None
        handle.fn(*handle.args)
        cb = self.on_event
        if cb is not None:
            cb()
        return True

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``stop_when()`` becomes true (checked between events)."""
        count = 0
        buckets = self._buckets
        times = self._times
        # Hoisted: the hook contract is install-before-run.
        on_event = self.on_event
        while True:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and count >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}; "
                    "likely a livelock in the simulated system"
                )
            if (count & _SOFT_DEADLINE_MASK) == 0 and _SOFT_DEADLINE is not None:
                if monotonic() > _SOFT_DEADLINE:
                    raise SoftTimeoutError(
                        f"soft deadline expired at t={self.now} "
                        f"after {self._events_run} events"
                    )
            # Inlined _advance_head(): find the next live handle.
            handle = None
            while True:
                head = self._head
                if head is not None:
                    idx = self._head_idx
                    n = len(head)
                    while idx < n:
                        h = head[idx]
                        if h.cancelled:
                            idx += 1
                            continue
                        self._head_idx = idx
                        handle = h
                        break
                    else:
                        self._head = None
                        continue
                    break
                if not times:
                    self._next_time = None
                    break
                t = heappop(times)
                head = buckets.pop(t)
                self._head = head
                self._head_idx = 0
                self._head_time = t
                self._queued -= len(head)
            if handle is None:
                # Queue empty or fully drained: the run still covers the
                # whole [now, until] window, so advance the clock to the
                # bound — same as the not-yet-due path below.
                if until is not None and until > self.now:
                    self.now = until
                return
            t = handle.time
            if until is not None and t > until:
                self._next_time = t
                if until > self.now:
                    self.now = until
                return
            # Inlined step(): the handle is live and due.
            self._head_idx += 1
            self._next_time = None
            self.now = t
            self._events_run += 1
            self._live -= 1
            handle.cancelled = True  # consumed (see step())
            handle._engine = None
            handle.fn(*handle.args)
            if on_event is not None:
                on_event()
            count += 1
