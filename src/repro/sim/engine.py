"""Discrete-event engine with an integer-nanosecond clock.

The engine is a single priority queue of ``(time, seq, handle)`` entries.
Cancellation is lazy: :class:`EventHandle` carries a ``cancelled`` flag and
popped events whose handle was cancelled are dropped.  ``seq`` makes ordering
of simultaneous events deterministic (FIFO in scheduling order), which in turn
makes every simulation bit-reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError


class EventHandle:
    """Handle to a scheduled event; ``cancel()`` prevents its callback."""

    __slots__ = ("time", "fn", "args", "cancelled", "_engine")

    def __init__(
        self,
        time: int,
        fn: Callable[..., Any],
        args: tuple,
        engine: "Engine | None" = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        # The owning engine keeps a live-event counter so ``pending`` is
        # O(1); tell it this event will never fire.  ``_engine`` is cleared
        # once the event fires, so a late cancel() cannot double-decrement.
        engine = self._engine
        self._engine = None
        if engine is not None:
            engine._live -= 1
        # Drop references so cancelled events do not pin large objects
        # while they wait to be popped from the heap.
        self.fn = _noop
        self.args = ()


def _noop(*_args) -> None:  # pragma: no cover - trivial
    return None


class Engine:
    """Event loop owning the simulated clock."""

    __slots__ = ("now", "_heap", "_seq", "_events_run", "_live")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._seq = 0
        self._events_run = 0
        self._live = 0

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the queue (O(1):
        a live counter maintained on schedule/cancel/fire, so kernels that
        poll it do not go quadratic in long runs)."""
        return self._live

    def schedule_at(self, time: int, fn: Callable[..., Any], *args) -> EventHandle:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        handle = EventHandle(time, fn, args, engine=self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        self._live += 1
        return handle

    def schedule(self, delay: int, fn: Callable[..., Any], *args) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def peek_time(self) -> int | None:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next live event. Returns False if none remain."""
        while self._heap:
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            self._events_run += 1
            self._live -= 1
            handle._engine = None  # fired: a late cancel() must not decrement
            handle.fn(*handle.args)
            return True
        return False

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``stop_when()`` becomes true (checked between events)."""
        count = 0
        while True:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and count >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}; "
                    "likely a livelock in the simulated system"
                )
            t = self.peek_time()
            if t is None:
                # Queue empty or fully drained: the run still covers the
                # whole [now, until] window, so advance the clock to the
                # bound — same as the not-yet-due path below.
                if until is not None and until > self.now:
                    self.now = until
                return
            if until is not None and t > until:
                self.now = max(self.now, until)
                return
            self.step()
            count += 1
