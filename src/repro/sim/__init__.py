"""Discrete-event simulation core: engine, deterministic RNG, tracing."""

from .engine import Engine, EventHandle
from .rng import RngStreams
from .trace import TraceRecorder, TraceEvent

__all__ = ["Engine", "EventHandle", "RngStreams", "TraceRecorder", "TraceEvent"]
