"""Deterministic named random streams.

Every stochastic component of the simulator (wake-target tie-breaking, BWD
detection noise, workload arrival processes, ...) draws from its own named
substream so that adding a new consumer never perturbs existing ones, and a
single top-level seed makes whole experiments reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stable_key(name: str) -> int:
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory of independent, deterministic ``numpy`` generators."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use)."""
        gen = self._cache.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(_stable_key(name),))
            gen = np.random.default_rng(ss)
            self._cache[name] = gen
        return gen

    def fork(self, offset: int) -> "RngStreams":
        """A new independent family, for repeated runs of the same config."""
        return RngStreams(self.seed + 0x9E3779B9 * (offset + 1) % (2**63))
