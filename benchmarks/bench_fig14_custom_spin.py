"""Figure 14 — user-customized spinning (NPB lu, SPLASH-2 volrend)."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table


def test_fig14_custom_spin(benchmark):
    rows = run_once(
        benchmark, figures.fig14_custom_spin, work_scale=0.4
    )
    by = {}
    for r in rows:
        by.setdefault((r.app, r.environment), {})[(r.nthreads, r.setting)] = (
            r.duration_ns
        )
    print()
    for (app, env), d in by.items():
        table = []
        for n in (8, 16, 32):
            row = [n]
            for s in ("vanilla", "PLE", "optimized"):
                v = d.get((n, s))
                row.append("n/a" if v is None else f"{v / 1e6:.1f}")
            table.append(row)
        print(
            format_table(
                ["threads", "vanilla", "PLE", "optimized"],
                table,
                title=f"Figure 14 ({app}, {env}): execution time (ms)",
            )
        )

    for (app, env), d in by.items():
        # Vanilla collapses progressively with the oversubscription ratio.
        assert d[(16, "vanilla")] > 1.5 * d[(8, "vanilla")], (app, env)
        assert d[(32, "vanilla")] > d[(16, "vanilla")], (app, env)
        # BWD contains it (paper: close to no-oversubscription, with some
        # growing overhead).
        assert d[(32, "optimized")] < d[(32, "vanilla")] / 3, (app, env)
        assert d[(32, "optimized")] < 3.0 * d[(8, "vanilla")], (app, env)
        # PLE cannot see these plain-variable spin loops.
        if env == "vm":
            assert d[(32, "PLE")] > 0.9 * d[(32, "vanilla")], app
