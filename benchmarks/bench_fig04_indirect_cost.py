"""Figure 4 — indirect cost of context switches vs working-set size for
four access patterns (two threads sharing one core)."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table

KB = 1024
MB = 1024 * KB


def test_fig04_indirect_cost(benchmark):
    out = run_once(benchmark, figures.fig04_indirect_cost)
    sizes = [s for s, _ in out["seq-r"]]
    print()
    print(
        format_table(
            ["size"] + list(out),
            [
                [f"{s // KB}KB" if s < MB else f"{s // MB}MB"]
                + [f"{dict(out[p])[s] / 1000:.1f}" for p in out]
                for s in sizes
            ],
            title="Figure 4: indirect cost per context switch (us)",
        )
    )
    seq = dict(out["seq-r"])
    rnd = dict(out["rnd-r"])
    rmw = dict(out["rnd-rmw"])
    # Sequential: non-negative, grows, ~1 ms at 128 MB.
    costs = [seq[s] for s in sizes]
    assert all(c >= 0 for c in costs) and costs == sorted(costs)
    assert 300_000 < seq[128 * MB] < 5_000_000
    # Random read: negative at the L1-TLB knee, positive 1-4 MB, strongly
    # negative at the L2-TLB knee.
    assert rnd[256 * KB] < 0 and rnd[512 * KB] < 0
    assert rnd[1 * MB] > 0 and rnd[4 * MB] > 0
    assert rnd[8 * MB] < -1_000_000
    # Random RMW: never meaningfully positive (always oversubscribe).
    assert all(rmw[s] <= 1_000 for s in sizes)
