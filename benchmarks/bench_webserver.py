"""CloudSuite-style web serving under oversubscription.

Not a numbered paper figure: Section 4.2 states the CloudSuite web-serving
results "confirmed our findings" without showing them; this benchmark
fills that gap with the same three-way comparison as Figure 12.
"""

from __future__ import annotations

from conftest import run_once

from repro.config import optimized_config, vanilla_config
from repro.runners import format_table
from repro.workloads.webserver import WebServerConfig, webserver_run


def _sweep(duration_ms=250.0, seed=2021):
    rows = []
    for cores in (4, 8):
        for label, cfg, workers in (
            ("8T(vanilla)", vanilla_config(cores=cores, seed=seed), 8),
            ("32T(vanilla)", vanilla_config(cores=cores, seed=seed), 32),
            ("32T(optimized)",
             optimized_config(cores=cores, seed=seed, bwd=False), 32),
        ):
            r = webserver_run(
                cfg,
                WebServerConfig(workers=workers, connections=96),
                duration_ms=duration_ms,
            )
            rows.append((cores, label, r))
    return rows


def test_webserver_oversubscription(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(
        format_table(
            ["cores", "setting", "kops/s", "avg us", "p99 us",
             "p99 dynamic us"],
            [
                [c, label, r.throughput_ops() / 1e3,
                 r.latency_summary().mean, r.latency_summary().p99,
                 r.latency_summary("dynamic").p99]
                for c, label, r in rows
            ],
            title="Web serving (CloudSuite-style)",
            float_fmt="{:.1f}",
        )
    )
    d = {(c, label): r for c, label, r in rows}
    for cores in (4,):
        base = d[(cores, "8T(vanilla)")]
        over = d[(cores, "32T(vanilla)")]
        opt = d[(cores, "32T(optimized)")]
        # Same story as memcached: vanilla oversubscription costs tail
        # latency; VB restores it.
        assert over.latency_summary().p99 > base.latency_summary().p99
        assert (
            opt.latency_summary().p99 < over.latency_summary().p99
        )
        assert opt.throughput_ops() >= 0.9 * base.throughput_ops()