"""Figure 1 — normalized execution time of the 32-benchmark suite,
8 threads vs 32 threads on 8 cores, vanilla Linux."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table
from repro.workloads import Group, SUITE


def test_fig01_overview(benchmark):
    rows = run_once(benchmark, figures.fig01_overview, work_scale=0.5)
    print()
    print(
        format_table(
            ["benchmark", "group", "32T/8T (sim)", "32T/8T (paper)"],
            [[r.name, r.group, r.ratio, r.paper_ratio] for r in rows],
            title="Figure 1: oversubscription overhead across the suite",
        )
    )
    by_name = {r.name: r for r in rows}

    # Group 1/2: no benchmark suffers meaningfully.
    for prof in SUITE.values():
        r = by_name[prof.name]
        if prof.group is Group.NEUTRAL:
            assert 0.85 < r.ratio < 1.12, prof.name
        elif prof.group is Group.BENEFIT:
            assert r.ratio < 1.05, prof.name

    # Group 3: every blocking app suffers; spin apps collapse.
    suffer = [
        by_name[p.name].ratio
        for p in SUITE.values()
        if p.group is Group.SUFFER_BLOCKING
    ]
    assert sum(1 for r in suffer if r > 1.05) >= len(suffer) - 2
    assert by_name["lu"].ratio > 10
    assert by_name["volrend"].ratio > 4
    assert by_name["lu"].ratio == max(r.ratio for r in rows)
