"""Figure 11 — exploiting CPU elasticity: five applications across core
counts, with fixed thread counts, pinning, and the optimized kernel."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table


def test_fig11_elasticity(benchmark):
    points = run_once(
        benchmark,
        figures.fig11_elasticity,
        core_counts=[2, 4, 8, 16, 32],
        work_scale=0.35,
    )
    by = {}
    for p in points:
        by.setdefault(p.app, {})[(p.cores, p.setting)] = p.duration_ns
    print()
    for app, d in by.items():
        rows = []
        for cores in (2, 4, 8, 16, 32):
            row = [cores]
            for s in ("#core-T(vanilla)", "8T(vanilla)", "32T(vanilla)",
                      "32T(pinned)", "32T(optimized)"):
                v = d[(cores, s)]
                row.append("crash" if v is None else f"{v / 1e6:.1f}")
            rows.append(row)
        print(
            format_table(
                ["cores", "#core-T", "8T", "32T", "32T pin", "32T opt"],
                rows,
                title=f"Figure 11 ({app}): execution time (ms)",
            )
        )

    for app, d in by.items():
        # More cores help 32 threads: monotone-ish improvement to 32 cores.
        assert d[(32, "32T(optimized)")] < d[(2, "32T(optimized)")] / 4
        # At 32 cores, 32 threads beat 8 threads (elasticity exploited).
        assert d[(32, "32T(optimized)")] < d[(32, "8T(vanilla)")]
        # With VB, oversubscription is never much worse than 8T (paper:
        # "running 32 threads was never worse than running 8 threads").
        for cores in (2, 4, 8):
            assert (
                d[(cores, "32T(optimized)")]
                < 1.25 * d[(cores, "8T(vanilla)")]
            ), (app, cores)

    # ep gains from oversubscription at 32 cores (paper: 51%).
    ep = by["ep"]
    gain = ep[(32, "8T(vanilla)")] / ep[(32, "32T(vanilla)")]
    assert gain > 1.5
