"""Figure 10 — the effect of VB on pthreads primitives."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table


def test_fig10_primitives(benchmark):
    part_a, part_b = run_once(
        benchmark,
        figures.fig10_primitives,
        thread_counts=[1, 2, 4, 8, 16, 32],
        core_counts=[1, 2, 4, 8, 16, 32],
        iterations=600,
    )
    print()
    print(
        format_table(
            ["primitive", "threads", "speedup"],
            [[r.primitive, r.nthreads, r.speedup] for r in part_a],
            title="Figure 10(a): VB speedup, varying threads on one core",
        )
    )
    print(
        format_table(
            ["primitive", "cores", "speedup"],
            [[r.primitive, r.cores, r.speedup] for r in part_b],
            title="Figure 10(b): VB speedup, 32 threads on varying cores",
        )
    )
    a = {(r.primitive, r.nthreads): r.speedup for r in part_a}
    b = {(r.primitive, r.cores): r.speedup for r in part_b}
    # (a) Group synchronization benefits; mutex does not (paper: barrier
    # 1.52x, cond 2.34x, mutex ~1x at 32 threads on one core).
    assert a[("barrier", 32)] > 1.15
    assert a[("cond", 32)] > a[("barrier", 32)]
    assert a[("mutex", 32)] < 1.3
    # Single thread: VB costs nothing (and its cheaper wake path can even
    # help slightly).
    for prim in ("mutex", "cond", "barrier"):
        assert 0.95 < a[(prim, 1)] < 1.3
    # (b) Benefits grow with core count up to the oversubscribed range
    # (paper: up to 3x barrier / 5x cond).
    assert b[("barrier", 8)] > b[("barrier", 1)]
    assert b[("cond", 8)] > 2.0
    # At 32 cores (no oversubscription) VB degrades gracefully.
    assert b[("barrier", 32)] > 0.9
    assert b[("mutex", 32)] > 0.9
