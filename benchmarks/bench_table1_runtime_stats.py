"""Table 1 — runtime statistics under thread oversubscription: CPU
utilization and in-node / cross-node migrations for the 13 blocking
benchmarks under 8T vanilla, 32T vanilla, and 32T optimized."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table


def test_table1_runtime_stats(benchmark):
    rows = run_once(benchmark, figures.fig09_vb_applications, work_scale=0.5)
    print()
    print(
        format_table(
            [
                "app", "util 8T", "util 32T", "util Opt",
                "in-migr 8T", "in-migr 32T", "in-migr Opt",
                "x-migr 8T", "x-migr 32T", "x-migr Opt",
            ],
            [
                [
                    r.name,
                    f"{r.util_8t:.0f}", f"{r.util_32t:.0f}",
                    f"{r.util_opt:.0f}",
                    r.migr_in_8t, r.migr_in_32t, r.migr_in_opt,
                    r.migr_cross_8t, r.migr_cross_32t, r.migr_cross_opt,
                ]
                for r in rows
            ],
            title="Table 1: runtime statistics (util %: 800 = 8 busy CPUs)",
        )
    )
    util_drop = 0
    migr_storm = 0
    for r in rows:
        base = max(1, r.migr_in_8t + r.migr_cross_8t)
        over = r.migr_in_32t + r.migr_cross_32t
        opt = r.migr_in_opt + r.migr_cross_opt
        if r.util_32t < r.util_8t:
            util_drop += 1
        if over > 5 * base:
            migr_storm += 1
        # Optimized restores utilization and suppresses migrations.
        assert r.util_opt > r.util_32t - 30, r.name
        assert opt < over, r.name
    # The paper's culprits show for the vast majority of the set.
    assert util_drop >= 10
    assert migr_storm >= 10
