"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding driver from `repro.runners.figures` once (simulations are
deterministic; repeated timing rounds would only measure the host), prints
the reproduced rows next to the paper's reported values, and asserts the
paper's qualitative claims on the output.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
