"""Figure 3 — measured interval between synchronizations across the suite."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table


def test_fig03_sync_intervals(benchmark):
    rows = run_once(benchmark, figures.fig03_sync_intervals, work_scale=0.5)
    hist = figures.fig03_histogram(rows)
    print()
    print(
        format_table(
            ["interval (us)", "# programs"],
            hist,
            title="Figure 3: interval between synchronizations",
        )
    )
    print(
        format_table(
            ["benchmark", "interval (us)"],
            [[r.name, r.interval_us] for r in sorted(rows, key=lambda r: r.interval_us)],
            float_fmt="{:.0f}",
        )
    )
    by_name = {r.name: r for r in rows}
    # Paper: most programs sync no more often than ~1 ms; facesim is the
    # most frequent at ~160 us.
    fastest = min(rows, key=lambda r: r.interval_us)
    # facesim (paper: 160 us) is among the most frequent synchronizers;
    # fluidanimate's per-cell locking can edge it out in our model.
    top3 = sorted(rows, key=lambda r: r.interval_us)[:3]
    assert "facesim" in {r.name for r in top3}
    assert 25 < fastest.interval_us < 260
    slow = sum(1 for r in rows if r.interval_us >= 400)
    assert slow >= len(rows) // 2
    # CS overhead at these intervals stays below ~1% for essentially the
    # whole suite (the paper's conclusion); our fluidanimate/facesim models
    # block more often than the paper's measured minimum, so allow two
    # outliers and bound the worst case.
    overheads = [1500 / (r.interval_us * 1000) for r in rows]
    assert sum(1 for o in overheads if o < 0.011) >= len(rows) - 2
    assert max(overheads) < 0.06
