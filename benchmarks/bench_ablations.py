"""Ablations over VB's and BWD's design ingredients (DESIGN.md section 4).

Not a paper figure: quantifies how much each mechanism ingredient carries,
so readers can see *why* the design is the way it is.
"""

from __future__ import annotations

from conftest import run_once

from repro.runners import format_table
from repro.runners.ablations import bwd_ablation, vb_ablation


def test_vb_ablation(benchmark):
    rows = run_once(benchmark, vb_ablation, work_scale=0.5)
    by = {}
    for r in rows:
        by.setdefault(r.workload, {})[r.variant] = r.duration_ns
    print()
    for app, d in by.items():
        print(
            format_table(
                ["variant", "time (ms)", "vs full VB"],
                [
                    [v, t / 1e6, t / d["full VB"]]
                    for v, t in d.items()
                ],
                title=f"VB ablation — {app}, 32T on 8 cores",
            )
        )
    for app, d in by.items():
        # Full VB beats vanilla decisively.
        assert d["full VB"] < 0.75 * d["vanilla (no VB)"], app
        # Each ingredient removal costs something (or at least nothing).
        assert d["no immediate schedule"] >= 0.95 * d["full VB"], app
        assert d["no disable rule"] >= 0.95 * d["full VB"], app


def test_bwd_ablation(benchmark):
    rows = run_once(benchmark, bwd_ablation, work_scale=0.4)
    by = {}
    for r in rows:
        by.setdefault(r.workload, {})[r.variant] = r.duration_ns
    print()
    for wl, d in by.items():
        print(
            format_table(
                ["variant", "time (ms)", "vs full BWD"],
                [[v, t / 1e6, t / d["full BWD"]] for v, t in d.items()],
                title=f"BWD ablation — {wl}, 32T on 8 cores",
            )
        )
    for wl, d in by.items():
        assert d["full BWD"] < 0.7 * d["vanilla (no BWD)"], wl
        # A coarser period detects later and recovers less.
        assert d["period 400us"] >= 0.95 * d["full BWD"], wl
        # The skip flag matters: without it spinners come right back.
        assert d["no skip flag"] >= 0.95 * d["full BWD"], wl
