"""Figure 9 — virtual blocking on the 13 blocking-synchronization
benchmarks, on 8 cores and on 8 hyperthreads of 4 cores."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table


def _check(rows):
    recovered = 0
    for r in rows:
        # VB always improves on vanilla oversubscription...
        assert r.optimized_ratio < r.vanilla_ratio + 0.05, r.name
        # ...and lands close to (or better than) the 8T baseline.
        if r.optimized_ratio <= 1.10:
            recovered += 1
    assert recovered >= len(rows) - 2


def test_fig09_8cores(benchmark):
    rows = run_once(
        benchmark, figures.fig09_vb_applications, work_scale=0.5, smt=False
    )
    print()
    print(
        format_table(
            ["benchmark", "32T/8T vanilla", "32T/8T optimized"],
            [[r.name, r.vanilla_ratio, r.optimized_ratio] for r in rows],
            title="Figure 9 (8 cores): normalized execution time",
        )
    )
    _check(rows)
    # Paper: 5.5%-56.7% slowdowns under vanilla for this set.
    assert sum(1 for r in rows if r.vanilla_ratio > 1.05) >= 10


def test_fig09_8hyperthreads(benchmark):
    rows = run_once(
        benchmark,
        figures.fig09_vb_applications,
        work_scale=0.4,
        smt=True,
        names=["streamcluster", "ocean", "cg", "is", "sp"],
    )
    print()
    print(
        format_table(
            ["benchmark", "32T/8T vanilla", "32T/8T optimized"],
            [[r.name, r.vanilla_ratio, r.optimized_ratio] for r in rows],
            title="Figure 9 (8 HT on 4 cores): normalized execution time",
        )
    )
    # Paper: the trend is similar with hyperthreading.
    _check(rows)
