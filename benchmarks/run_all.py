#!/usr/bin/env python3
"""Full-fidelity report: regenerate every table and figure in one run.

Usage::

    python benchmarks/run_all.py [--scale 1.0] [--quick] [--jobs N]
                                 [--no-cache] [--cache-dir DIR]
                                 [--results FILE] [--seed N]
                                 [--strict] [--validate]

Every data point (app x thread-count x kernel-mode x core-count) is an
independent deterministic simulation, so the report fans them out across a
process pool (``--jobs``, default ``os.cpu_count()``) and caches each
result under ``.repro-cache/`` keyed on (config, seed, repro version).
Output is byte-identical for a fixed seed regardless of ``--jobs`` or
cache state; a warm-cache re-run executes zero simulations.

``--quick`` is a *default* for ``--scale`` (0.3): an explicit ``--scale``
always wins, with a warning when both are given.  A machine-readable
``results.json`` artifact is written alongside the printed tables.

``--validate`` additionally checks the produced results against the
paper fidelity specs (``docs/validation.md``) and exits 4 on an
uncatalogued drift; ``--strict`` turns partial results (specs that
failed after retries) into exit 2.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.runners.full_report import add_report_flags, main_from_args


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    add_report_flags(ap)
    return main_from_args(ap.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
