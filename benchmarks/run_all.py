#!/usr/bin/env python3
"""Full-fidelity report: regenerate every table and figure in one run.

Usage::

    python benchmarks/run_all.py [--scale 1.0] [--quick]

Prints each experiment's reproduced rows next to the paper's reported
values where the paper gives numbers.  ``--quick`` shrinks workloads for a
fast smoke pass; the default takes several minutes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.runners import figures, format_table

KB = 1024
MB = 1024 * KB


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--quick", action="store_true")
    args = ap.parse_args()
    scale = 0.3 if args.quick else args.scale
    t0 = time.time()

    banner("Figure 1 — suite overview (32T vs 8T on 8 cores, vanilla)")
    rows = figures.fig01_overview(work_scale=scale)
    print(format_table(
        ["benchmark", "group", "32T/8T (sim)", "32T/8T (paper)"],
        [[r.name, r.group, r.ratio, r.paper_ratio] for r in rows],
    ))

    banner("Figure 2 — direct context-switch cost")
    f2, per_switch = figures.fig02_direct_cost()
    print(format_table(
        ["threads", "pure (norm)", "atomic (norm)"],
        [[r.nthreads, r.pure_normalized, r.atomic_normalized] for r in f2],
        float_fmt="{:.4f}",
    ))
    print(f"per-switch cost: {per_switch:.0f} ns (paper: ~1500 ns)")

    banner("Figure 3 — interval between synchronizations")
    f3 = figures.fig03_sync_intervals(work_scale=min(scale, 0.5))
    print(format_table(["bucket (us)", "# programs"], figures.fig03_histogram(f3)))

    banner("Figure 4 — indirect cost per context switch (us)")
    f4 = figures.fig04_indirect_cost()
    sizes = [s for s, _ in f4["seq-r"]]
    print(format_table(
        ["size"] + list(f4),
        [
            [f"{s // KB}KB" if s < MB else f"{s // MB}MB"]
            + [dict(f4[p])[s] / 1000 for p in f4]
            for s in sizes
        ],
        float_fmt="{:.1f}",
    ))

    banner("Figure 9 / Table 1 — virtual blocking on blocking benchmarks")
    f9 = figures.fig09_vb_applications(work_scale=scale)
    print(format_table(
        ["app", "32T/8T vanilla", "32T/8T optimized", "util 8T/32T/Opt",
         "in-migr 8T/32T/Opt", "x-migr 8T/32T/Opt"],
        [
            [
                r.name, r.vanilla_ratio, r.optimized_ratio,
                f"{r.util_8t:.0f}/{r.util_32t:.0f}/{r.util_opt:.0f}",
                f"{r.migr_in_8t}/{r.migr_in_32t}/{r.migr_in_opt}",
                f"{r.migr_cross_8t}/{r.migr_cross_32t}/{r.migr_cross_opt}",
            ]
            for r in f9
        ],
    ))

    banner("Figure 10 — VB on pthreads primitives")
    part_a, part_b = figures.fig10_primitives(iterations=1000)
    print(format_table(
        ["primitive", "threads", "speedup (1 core)"],
        [[r.primitive, r.nthreads, r.speedup] for r in part_a],
    ))
    print(format_table(
        ["primitive", "cores", "speedup (32 threads)"],
        [[r.primitive, r.cores, r.speedup] for r in part_b],
    ))

    banner("Figure 11 — CPU elasticity (execution time, ms)")
    f11 = figures.fig11_elasticity(work_scale=min(scale, 0.5))
    by = {}
    for p in f11:
        by.setdefault(p.app, {})[(p.cores, p.setting)] = p.duration_ns
    for app, d in by.items():
        print(format_table(
            ["cores", "#core-T", "8T", "32T", "32T pin", "32T opt"],
            [
                [c] + [
                    "crash" if d[(c, s)] is None else f"{d[(c, s)] / 1e6:.1f}"
                    for s in ("#core-T(vanilla)", "8T(vanilla)",
                              "32T(vanilla)", "32T(pinned)",
                              "32T(optimized)")
                ]
                for c in (2, 4, 8, 16, 32)
            ],
            title=app,
        ))

    banner("Figure 12 — memcached")
    f12 = figures.fig12_memcached(duration_ms=400)
    print(format_table(
        ["cores", "setting", "kops/s", "avg us", "p95 us", "p99 us"],
        [
            [r.cores, r.setting, r.throughput_ops / 1e3,
             r.latency.mean, r.latency.p95, r.latency.p99]
            for r in f12
        ],
        float_fmt="{:.1f}",
    ))

    banner("Figure 13 — ten spinlocks (execution time, ms)")
    f13 = figures.fig13_spinlocks()
    by13 = {}
    for r in f13:
        by13.setdefault((r.environment, r.algorithm), {})[r.setting] = r.duration_ns
    for env in ("container", "kvm"):
        settings = ["8T(vanilla)", "32T(vanilla)"]
        if env == "kvm":
            settings.append("32T(PLE)")
        settings.append("32T(optimized)")
        print(format_table(
            ["lock"] + settings,
            [
                [alg] + [by13[(env, alg)][s] / 1e6 for s in settings]
                for alg in figures.SPINLOCK_ORDER
            ],
            title=env,
            float_fmt="{:.1f}",
        ))

    banner("Figure 14 — user-customized spinning (ms)")
    f14 = figures.fig14_custom_spin(work_scale=min(scale, 0.5))
    by14 = {}
    for r in f14:
        by14.setdefault((r.app, r.environment), {})[(r.nthreads, r.setting)] = r.duration_ns
    for (app, env), d in by14.items():
        print(format_table(
            ["threads", "vanilla", "PLE", "optimized"],
            [
                [n] + [
                    "n/a" if d.get((n, s)) is None else f"{d[(n, s)] / 1e6:.1f}"
                    for s in ("vanilla", "PLE", "optimized")
                ]
                for n in (8, 16, 32)
            ],
            title=f"{app} ({env})",
        ))

    banner("Figure 15 — vs SHFLLOCK / Mutexee / MCS-TP (normalized)")
    f15 = figures.fig15_lock_comparison(work_scale=min(scale, 0.5))
    by15 = {}
    for r in f15:
        by15.setdefault(r.app, {})[r.lock] = r.duration_ns
    print(format_table(
        ["app", "pthread", "mutexee", "mcstp", "shfllock", "optimized"],
        [
            [app] + [d[k] / d["optimized"] for k in
                     ("pthread", "mutexee", "mcstp", "shfllock", "optimized")]
            for app, d in by15.items()
        ],
    ))

    banner("Table 2 — BWD sensitivity")
    t2 = figures.table2_true_positive(duration_ms=1_000 if args.quick else 4_000)
    print(format_table(
        ["spinlock", "# tries", "# TPs", "sensitivity %"],
        [[r.algorithm, r.tries, r.true_positives, r.sensitivity * 100]
         for r in t2],
    ))

    banner("Table 3 — BWD specificity and overhead")
    t3 = figures.table3_false_positive(work_scale=scale)
    print(format_table(
        ["app", "# tries", "# FPs", "specificity %", "FP overhead %",
         "timer overhead %"],
        [[r.name, r.tries, r.false_positives, r.specificity * 100,
          r.overhead_pct, r.timer_overhead_pct] for r in t3],
    ))

    print(f"\ntotal wall time: {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
