"""Figure 2 — direct cost of context switching (1-8 threads, one core)."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table


def test_fig02_direct_cost(benchmark):
    rows, per_switch = run_once(
        benchmark, figures.fig02_direct_cost, max_threads=8, total_work_ms=30
    )
    print()
    print(
        format_table(
            ["threads", "pure (norm)", "with atomic (norm)"],
            [[r.nthreads, r.pure_normalized, r.atomic_normalized] for r in rows],
            title=(
                "Figure 2: normalized execution time on one core "
                f"(per-switch cost {per_switch:.0f} ns; paper: ~1500 ns)"
            ),
            float_fmt="{:.4f}",
        )
    )
    # Paper: flat at ~1.0 regardless of thread count (overhead ~0.2%).
    for r in rows:
        assert 0.99 < r.pure_normalized < 1.01
        assert 0.99 < r.atomic_normalized < 1.02
    assert 1_000 < per_switch < 2_200
