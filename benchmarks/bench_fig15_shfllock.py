"""Figure 15 — comparison with SHFLLOCK, Mutexee, and MCS-TP at 4x
oversubscription (32 threads on 8 cores)."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table

LOCKS = ["pthread", "mutexee", "mcstp", "shfllock", "optimized"]


def test_fig15_lock_comparison(benchmark):
    rows = run_once(benchmark, figures.fig15_lock_comparison, work_scale=0.5)
    by = {}
    for r in rows:
        by.setdefault(r.app, {})[r.lock] = r.duration_ns
    print()
    print(
        format_table(
            ["app"] + LOCKS,
            [
                [app] + [d[lock] / 1e6 for lock in LOCKS]
                for app, d in by.items()
            ],
            title="Figure 15: execution time (ms), 32T on 8 cores",
            float_fmt="{:.1f}",
        )
    )
    best = 0.0
    for app, d in by.items():
        for lock in ("pthread", "mutexee", "mcstp", "shfllock"):
            # The lock libraries all still rely on vanilla futex sleeping
            # and suffer; VB+BWD with plain pthreads wins every time.
            assert d["optimized"] < d[lock], (app, lock)
            best = max(best, d[lock] / d["optimized"])
    # Paper: up to 5.4x more efficient.
    assert best > 3.0
