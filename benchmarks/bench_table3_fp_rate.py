"""Table 3 — BWD false-positive rate (specificity) and overhead on eight
blocking-only NPB benchmarks."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table

# Paper-reported specificity per app, for the printed comparison.
PAPER_SPECIFICITY = {
    "is": 99.38, "ep": 99.92, "cg": 99.44, "mg": 99.73,
    "ft": 99.99, "sp": 99.99, "bt": 99.91, "ua": 99.98,
}


def test_table3_false_positive(benchmark):
    results = run_once(
        benchmark, figures.table3_false_positive, work_scale=1.0
    )
    print()
    print(
        format_table(
            ["app", "# tries", "# FPs", "specificity %", "paper %",
             "FP overhead %"],
            [
                [r.name, r.tries, r.false_positives, r.specificity * 100,
                 PAPER_SPECIFICITY[r.name], r.overhead_pct]
                for r in results
            ],
            title="Table 3: BWD false-positive rate",
        )
    )
    for r in results:
        assert r.tries > 200, r.name
        # Paper: specificity >= 99.38% everywhere.
        assert r.specificity > 0.99, r.name
        # Paper: FP overhead <= 0.99%; our scaled-down runs have a few
        # percent of run-to-run noise, so the bound is the noise floor.
        assert r.overhead_pct < 6.0, r.name
        assert r.timer_overhead_pct < 3.0
