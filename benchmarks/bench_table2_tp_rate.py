"""Table 2 — BWD true-positive rate (sensitivity) for ten spinlocks."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table


def test_table2_true_positive(benchmark):
    results = run_once(
        benchmark, figures.table2_true_positive, duration_ms=2_000
    )
    print()
    print(
        format_table(
            ["spinlock", "# tries", "# TPs", "sensitivity %"],
            [
                [r.algorithm, r.tries, r.true_positives, r.sensitivity * 100]
                for r in results
            ],
            title="Table 2: BWD true-positive rate (paper: 99.76-99.90%)",
        )
    )
    for r in results:
        assert r.tries > 100, r.algorithm
        # Paper: ~99.8-99.9% across all ten algorithms.
        assert r.sensitivity > 0.99, r.algorithm
        assert r.true_positives <= r.tries
