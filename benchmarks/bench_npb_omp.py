"""NPB kernels on the OpenMP runtime layer under oversubscription.

Appendix experiment: the suite profiles already cover these benchmarks
statistically; this bench re-derives their oversubscription behavior from
their actual OpenMP region structure instead.
"""

from __future__ import annotations

from conftest import run_once

from repro.config import optimized_config, vanilla_config
from repro.runners import format_table
from repro.workloads.npb_omp import NPB_OMP_KERNELS, NpbOmpConfig, run_npb_omp


def _sweep(seed=2021):
    cfg = NpbOmpConfig(iterations=4, base_rows=128, row_cost_ns=20_000)
    rows = []
    for kernel in NPB_OMP_KERNELS:
        base = run_npb_omp(kernel, 8, vanilla_config(cores=8, seed=seed), cfg)
        over = run_npb_omp(kernel, 32, vanilla_config(cores=8, seed=seed), cfg)
        vb = run_npb_omp(
            kernel, 32, optimized_config(cores=8, seed=seed, bwd=False), cfg
        )
        rows.append((kernel, base, over, vb))
    return rows


def test_npb_omp_oversubscription(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(
        format_table(
            ["kernel", "regions", "8T (ms)", "32T/8T vanilla", "32T/8T VB"],
            [
                [k, base.regions, base.duration_ns / 1e6,
                 over.duration_ns / base.duration_ns,
                 vb.duration_ns / base.duration_ns]
                for k, base, over, vb in rows
            ],
            title="NPB kernels via their OpenMP region structure",
        )
    )
    by = {k: (base, over, vb) for k, base, over, vb in rows}
    # EP's single region is oversubscription-insensitive.
    ep_base, ep_over, ep_vb = by["ep"]
    assert ep_over.duration_ns < 1.15 * ep_base.duration_ns
    # Barrier-dense kernels suffer on vanilla; VB recovers all of them.
    for k in ("cg", "mg", "is", "ft"):
        base, over, vb = by[k]
        assert vb.duration_ns <= over.duration_ns, k
        assert vb.duration_ns < 1.2 * base.duration_ns, k
    # The most barrier-dense kernel (mg's coarse levels) suffers the most
    # among the region-structured kernels on vanilla.
    mg_ratio = by["mg"][1].duration_ns / by["mg"][0].duration_ns
    ep_ratio = by["ep"][1].duration_ns / by["ep"][0].duration_ns
    assert mg_ratio > ep_ratio
