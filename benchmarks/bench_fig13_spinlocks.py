"""Figure 13 — BWD across ten spinlock algorithms, container and KVM."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table
from repro.runners.figures import SPINLOCK_ORDER


def test_fig13_spinlocks(benchmark):
    rows = run_once(
        benchmark, figures.fig13_spinlocks, total_stages=640
    )
    by = {}
    for r in rows:
        by.setdefault((r.environment, r.algorithm), {})[r.setting] = (
            r.duration_ns
        )
    print()
    for env in ("container", "kvm"):
        settings = ["8T(vanilla)", "32T(vanilla)"]
        if env == "kvm":
            settings.append("32T(PLE)")
        settings.append("32T(optimized)")
        print(
            format_table(
                ["lock"] + settings,
                [
                    [alg] + [by[(env, alg)][s] / 1e6 for s in settings]
                    for alg in SPINLOCK_ORDER
                ],
                title=f"Figure 13 ({env}): execution time (ms)",
                float_fmt="{:.1f}",
            )
        )

    for (env, alg), d in by.items():
        # Every algorithm collapses under vanilla oversubscription...
        assert d["32T(vanilla)"] > 1.4 * d["8T(vanilla)"], (env, alg)
        # ...BWD brings 32T back near the 8T baseline...
        assert d["32T(optimized)"] < 2.5 * d["8T(vanilla)"], (env, alg)
        assert d["32T(optimized)"] < d["32T(vanilla)"], (env, alg)
        # ...and PLE does not help (KVM only).
        if env == "kvm":
            assert d["32T(PLE)"] > 0.85 * d["32T(vanilla)"], alg
