"""Figure 12 — memcached throughput and latency under oversubscription."""

from __future__ import annotations

from conftest import run_once

from repro.runners import figures, format_table


def test_fig12_memcached(benchmark):
    rows = run_once(
        benchmark, figures.fig12_memcached, core_counts=[4, 8, 16],
        duration_ms=300,
    )
    print()
    print(
        format_table(
            ["cores", "setting", "kops/s", "avg us", "p95 us", "p99 us"],
            [
                [r.cores, r.setting, r.throughput_ops / 1e3,
                 r.latency.mean, r.latency.p95, r.latency.p99]
                for r in rows
            ],
            title="Figure 12: memcached under thread oversubscription",
            float_fmt="{:.1f}",
        )
    )
    d = {(r.cores, r.setting): r for r in rows}
    # At 4 cores (4x oversubscription) the vanilla tail blows up and VB
    # slashes it (paper: 8x blowup; -92% p95 / -60% p99 from VB).
    van4 = d[(4, "4T(vanilla)")]
    van16 = d[(4, "16T(vanilla)")]
    opt16 = d[(4, "16T(optimized)")]
    assert van16.latency.p99 > 1.5 * van4.latency.p99
    assert van16.latency.p95 > 1.3 * van4.latency.p95
    assert opt16.latency.p99 < 0.5 * van16.latency.p99
    assert opt16.latency.p95 < 0.5 * van16.latency.p95
    assert opt16.throughput_ops >= 0.9 * van4.throughput_ops
    # At 8 cores (2x) the damage shrinks; VB never hurts.
    assert (
        d[(8, "16T(optimized)")].latency.p99
        <= d[(8, "16T(vanilla)")].latency.p99 * 1.1
    )
    # With 16 cores there is no oversubscription: 16T vanilla is fine and
    # everything converges (paper: VB close to best as cores scale).
    van16c16 = d[(16, "16T(vanilla)")]
    van4c16 = d[(16, "4T(vanilla)")]
    assert van16c16.latency.p99 < 1.5 * van4c16.latency.p99
