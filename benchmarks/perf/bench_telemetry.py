"""Schedstats overhead benchmark: the always-on telemetry tax.

Runs the same scheduler-heavy load as ``bench_kernel`` twice in-process —
once with the kernel's ``SCHEDSTATS`` counters on (the shipped default)
and once with them compiled out — and reports the relative throughput
cost.  The perf gate holds the overhead at <= 5% (ROADMAP/ISSUE budget):
schedstats are maintained incrementally on state transitions, and the
switch path defers both the PSI pair and the depth integral (they are
net-zero across a switch), so the tax must stay a few branch-and-adds
per event.

Metric: ``overhead_pct``, estimated as the median of per-pair A/B/B/A
ratios.  Shared runners drift in effective CPU speed on second-to-second
scales — far more than the effect being measured — so each sample runs
off/on/on/off back-to-back (linear drift cancels within a sample) and
the median over many samples discards frequency-step outliers.  The
comparison is self-relative, so the gate is robust to absolute machine
speed, unlike a throughput floor.
"""

from __future__ import annotations

import time

from common import bootstrap

bootstrap()

from repro.config import vanilla_config  # noqa: E402
from repro.kernel import kernel as kernel_mod  # noqa: E402
from repro.kernel.kernel import Kernel  # noqa: E402
from repro.prog import actions as A  # noqa: E402

_CORES = 8
_TASKS = 32
_COMPUTE_NS = 20_000  # short bursts -> high event rate


def _program(iters: int):
    for _ in range(iters):
        yield A.Compute(_COMPUTE_NS)
        yield A.Yield()


def _simulate(iters_per_task: int):
    kernel = Kernel(vanilla_config(cores=_CORES, seed=2021))
    for i in range(_TASKS):
        kernel.spawn(_program(iters_per_task), name=f"spin{i}")
    kernel.run_to_completion()
    return kernel.engine.events_run


def _timed(iters: int, schedstats: bool) -> float:
    """Seconds of CPU per engine event with SCHEDSTATS as given."""
    saved = kernel_mod.SCHEDSTATS
    kernel_mod.SCHEDSTATS = schedstats
    try:
        t0 = time.process_time()
        events = _simulate(iters)
        t1 = time.process_time()
    finally:
        kernel_mod.SCHEDSTATS = saved
    return (t1 - t0) / events


def run(quick: bool = False, pairs: int = 16) -> dict:
    iters = 60 if quick else 150
    _simulate(50)  # warm allocator/bytecode caches before timing
    ratios = []
    on_cost = off_cost = 0.0
    for _ in range(pairs):
        a1 = _timed(iters, False)
        b1 = _timed(iters, True)
        b2 = _timed(iters, True)
        a2 = _timed(iters, False)
        ratios.append((b1 + b2) / (a1 + a2))
        off_cost += a1 + a2
        on_cost += b1 + b2
    ratios.sort()
    median = ratios[len(ratios) // 2]
    return {
        "events_per_s_on": round(2 * pairs / on_cost, 1),
        "events_per_s_off": round(2 * pairs / off_cost, 1),
        "overhead_pct": round(100.0 * (median - 1.0), 2),
    }


if __name__ == "__main__":
    print(run(quick=True))
