#!/usr/bin/env python3
"""Perf microbenchmark driver.

Runs the core-simulator microbenchmarks and writes ``BENCH_core.json``
at the repo root:

    python benchmarks/perf/run.py              # full sizes
    python benchmarks/perf/run.py --quick      # CI sizes
    python benchmarks/perf/run.py --quick --check-baseline

``--check-baseline`` compares against the committed
``benchmarks/perf/baseline.json`` and exits non-zero when

* engine throughput dropped more than ``--tolerance`` (default 30%) —
  the perf-regression gate, sized to ride out shared-runner noise; or
* any end-to-end determinism digest differs — a hard failure at any
  tolerance, because results must be bit-identical for a fixed seed.

To refresh the baseline after an intentional change:
``python benchmarks/perf/run.py --quick --write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from common import REPO_ROOT, bootstrap

bootstrap()

import bench_endtoend  # noqa: E402
import bench_engine  # noqa: E402
import bench_kernel  # noqa: E402
import bench_loadgen  # noqa: E402
import bench_runqueue  # noqa: E402
import bench_telemetry  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "baseline.json")
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_core.json")

_BENCHES = {
    "engine": bench_engine,
    "runqueue": bench_runqueue,
    "kernel": bench_kernel,
    "loadgen": bench_loadgen,
    "endtoend": bench_endtoend,
    "telemetry": bench_telemetry,
}

#: Hard ceiling on the always-on schedstats tax (self-relative A/B in
#: bench_telemetry, so no baseline entry is involved).
SCHEDSTATS_OVERHEAD_LIMIT_PCT = 5.0


def collect(quick: bool) -> dict:
    from repro import __version__

    results = {}
    for name, mod in _BENCHES.items():
        print(f"[bench] {name} ...", flush=True)
        results[name] = mod.run(quick=quick)
        print(f"[bench] {name}: {json.dumps(results[name])}", flush=True)
    return {
        "version": __version__,
        "quick": quick,
        "python": platform.python_version(),
        "benchmarks": results,
    }


def check_baseline(report: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    try:
        with open(BASELINE_PATH, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except OSError:
        return [f"no baseline at {BASELINE_PATH}; run with --write-baseline"]
    problems: list[str] = []

    base_tp = baseline["benchmarks"]["engine"]["events_per_s"]
    cur_tp = report["benchmarks"]["engine"]["events_per_s"]
    floor = base_tp * (1.0 - tolerance)
    if cur_tp < floor:
        problems.append(
            f"engine throughput regression: {cur_tp:.0f} events/s < "
            f"{floor:.0f} (baseline {base_tp:.0f} - {tolerance:.0%})"
        )

    overhead = (report["benchmarks"].get("telemetry") or {}).get(
        "overhead_pct")
    if overhead is not None and overhead > SCHEDSTATS_OVERHEAD_LIMIT_PCT:
        problems.append(
            f"schedstats overhead too high: {overhead:.2f}% > "
            f"{SCHEDSTATS_OVERHEAD_LIMIT_PCT:.1f}% (always-on telemetry "
            f"must stay cheap; see bench_telemetry.py)"
        )

    base_e2e = baseline["benchmarks"]["endtoend"]
    cur_e2e = report["benchmarks"]["endtoend"]
    for section, entry in base_e2e.items():
        got = cur_e2e.get(section, {}).get("digest")
        if got != entry["digest"]:
            problems.append(
                f"determinism digest changed for {section}: "
                f"{got} != {entry['digest']}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI sizes (smaller event counts)")
    ap.add_argument("--check-baseline", action="store_true",
                    help="fail on engine-throughput/digest regression")
    ap.add_argument("--write-baseline", action="store_true",
                    help="refresh benchmarks/perf/baseline.json")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed engine-throughput drop (default 0.30)")
    ap.add_argument("--output", default=OUTPUT_PATH,
                    help="where to write the report JSON")
    args = ap.parse_args(argv)

    report = collect(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")

    if args.write_baseline:
        with open(BASELINE_PATH, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {BASELINE_PATH}")

    if args.check_baseline:
        problems = check_baseline(report, args.tolerance)
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        if problems:
            return 1
        print("baseline check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
