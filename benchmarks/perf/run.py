#!/usr/bin/env python3
"""Perf microbenchmark driver.

Runs the core-simulator microbenchmarks and writes ``BENCH_core.json``
at the repo root:

    python benchmarks/perf/run.py              # full sizes
    python benchmarks/perf/run.py --quick      # CI sizes
    python benchmarks/perf/run.py --quick --check-baseline

``--check-baseline`` compares against the committed
``benchmarks/perf/baseline.json`` and exits non-zero when

* engine throughput dropped more than ``--tolerance`` (default 30%) —
  the perf-regression gate, sized to ride out shared-runner noise; or
* any end-to-end determinism digest differs — a hard failure at any
  tolerance, because results must be bit-identical for a fixed seed.

Both checks are like-for-like per backend: the baseline holds one
section per hot core under ``"backends"`` and a ``--backend fast`` run
is only ever compared against the ``fast`` section (and vice versa), so
the accelerated core cannot mask a pure-path regression or be gated
against the slower reference numbers.

To refresh the current backend's baseline after an intentional change:
``python benchmarks/perf/run.py --quick [--backend fast] --write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from common import REPO_ROOT, bootstrap

bootstrap()

import bench_endtoend  # noqa: E402
import bench_engine  # noqa: E402
import bench_kernel  # noqa: E402
import bench_loadgen  # noqa: E402
import bench_runqueue  # noqa: E402
import bench_telemetry  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "baseline.json")
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_core.json")

_BENCHES = {
    "engine": bench_engine,
    "runqueue": bench_runqueue,
    "kernel": bench_kernel,
    "loadgen": bench_loadgen,
    "endtoend": bench_endtoend,
    "telemetry": bench_telemetry,
}

#: Hard ceiling on the always-on schedstats tax (self-relative A/B in
#: bench_telemetry, so no baseline entry is involved).
SCHEDSTATS_OVERHEAD_LIMIT_PCT = 5.0


def collect(quick: bool) -> dict:
    from repro import __version__
    from repro.fastpath import backend_info

    results = {}
    for name, mod in _BENCHES.items():
        print(f"[bench] {name} ...", flush=True)
        results[name] = mod.run(quick=quick)
        print(f"[bench] {name}: {json.dumps(results[name])}", flush=True)
    return {
        "version": __version__,
        "quick": quick,
        "python": platform.python_version(),
        "backend": backend_info(),
        "benchmarks": results,
    }


def _baseline_section(baseline: dict, backend: str) -> dict | None:
    """The like-for-like baseline for ``backend``.

    New-format baselines keep one report per hot core under
    ``"backends"``; a legacy flat baseline (pre-backend) counts as the
    ``pure`` section so existing checkouts keep gating.
    """
    sections = baseline.get("backends")
    if sections is not None:
        return sections.get(backend)
    return baseline if backend == "pure" else None


def check_baseline(report: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    from repro.fastpath import current_backend

    try:
        with open(BASELINE_PATH, "r", encoding="utf-8") as f:
            full_baseline = json.load(f)
    except OSError:
        return [f"no baseline at {BASELINE_PATH}; run with --write-baseline"]
    backend = current_backend()
    baseline = _baseline_section(full_baseline, backend)
    if baseline is None:
        return [
            f"no '{backend}' section in {BASELINE_PATH}; run with "
            f"--backend {backend} --write-baseline"
        ]
    problems: list[str] = []

    base_tp = baseline["benchmarks"]["engine"]["events_per_s"]
    cur_tp = report["benchmarks"]["engine"]["events_per_s"]
    floor = base_tp * (1.0 - tolerance)
    if cur_tp < floor:
        problems.append(
            f"engine throughput regression: {cur_tp:.0f} events/s < "
            f"{floor:.0f} (baseline {base_tp:.0f} - {tolerance:.0%})"
        )

    overhead = (report["benchmarks"].get("telemetry") or {}).get(
        "overhead_pct")
    if overhead is not None and overhead > SCHEDSTATS_OVERHEAD_LIMIT_PCT:
        problems.append(
            f"schedstats overhead too high: {overhead:.2f}% > "
            f"{SCHEDSTATS_OVERHEAD_LIMIT_PCT:.1f}% (always-on telemetry "
            f"must stay cheap; see bench_telemetry.py)"
        )

    cur_e2e = report["benchmarks"]["endtoend"]
    # Digests must match the own-backend baseline AND every other
    # backend's section: bit-identical results are the whole contract.
    sections = full_baseline.get("backends") or {"pure": baseline}
    for other_name, other in sections.items():
        for section, entry in other["benchmarks"]["endtoend"].items():
            got = cur_e2e.get(section, {}).get("digest")
            if got != entry["digest"]:
                problems.append(
                    f"determinism digest changed for {section} "
                    f"(vs {other_name} baseline): {got} != {entry['digest']}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI sizes (smaller event counts)")
    ap.add_argument("--check-baseline", action="store_true",
                    help="fail on engine-throughput/digest regression")
    ap.add_argument("--write-baseline", action="store_true",
                    help="refresh benchmarks/perf/baseline.json")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed engine-throughput drop (default 0.30)")
    ap.add_argument("--output", default=OUTPUT_PATH,
                    help="where to write the report JSON")
    from repro.fastpath import add_backend_argument, apply_backend_argument

    add_backend_argument(ap)
    args = ap.parse_args(argv)
    apply_backend_argument(args)

    report = collect(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")

    if args.write_baseline:
        from repro.fastpath import current_backend

        try:
            with open(BASELINE_PATH, "r", encoding="utf-8") as f:
                baseline = json.load(f)
        except OSError:
            baseline = {}
        if "backends" not in baseline:
            # Migrate a legacy flat baseline into the pure section.
            baseline = (
                {"backends": {"pure": baseline}} if baseline
                else {"backends": {}}
            )
        baseline["backends"][current_backend()] = report
        with open(BASELINE_PATH, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {BASELINE_PATH} ({current_backend()} section)")

    if args.check_baseline:
        problems = check_baseline(report, args.tolerance)
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        if problems:
            return 1
        print("baseline check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
