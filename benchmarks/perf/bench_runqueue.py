"""CFS runqueue operation microbenchmark.

Measures the runqueue's hot operations over a queue populated like an
oversubscribed CPU (32 tasks, a third of them VB-blocked):

* enqueue / pick_next cycles (the dispatch path),
* ``nr_schedulable`` (called per slice calculation — O(1) counter),
* ``update_min_vruntime`` (called per dispatch/park — O(1) leftmost).

Metric: ``ops_per_s`` of a combined cycle, best of three rounds.  The
runqueue class honors the process backend (``repro.fastpath``): run with
``--backend fast`` / ``REPRO_BACKEND=fast`` to measure the accelerated
heap-based queue.
"""

from __future__ import annotations

from common import bootstrap, repeat_best

bootstrap()

from repro.fastpath import make_runqueue  # noqa: E402
from repro.kernel.task import Task, TaskState  # noqa: E402

_QUEUED = 32
_BLOCKED_EVERY = 3


def _make_tasks():
    tasks = []
    for i in range(_QUEUED):
        t = Task(f"t{i}", iter(()))
        t.vruntime = 1_000 * i
        t.thread_state = 1 if i % _BLOCKED_EVERY == 0 else 0
        t.state = TaskState.RUNNABLE
        tasks.append(t)
    return tasks


def _cycle(n_ops: int) -> int:
    tasks = _make_tasks()
    rq = make_runqueue(0)
    for t in tasks:
        rq.enqueue(t)
    done = 0
    while done < n_ops:
        # One dispatch-shaped cycle: pick, account, requeue at a higher
        # vruntime — plus the O(1) queries the scheduler makes around it.
        t = rq.pick_next()
        rq.nr_schedulable()
        rq.update_min_vruntime()
        t.vruntime += 1_000 if t.thread_state == 0 else 0
        rq.enqueue(t)
        rq.peek_next()
        done += 1
    return done


def run(quick: bool = False) -> dict:
    n = 50_000 if quick else 300_000
    wall, ops = repeat_best(lambda: _cycle(n))
    return {
        "ops": ops,
        "queued_tasks": _QUEUED,
        "wall_s": round(wall, 6),
        "ops_per_s": round(ops / wall, 1),
    }


if __name__ == "__main__":
    print(run(quick=True))
