"""Engine throughput microbenchmark.

Drives the discrete-event engine with the event mix the simulator
produces in practice:

* **tick chains** — per-CPU events that fire and immediately reschedule
  a successor, frequently landing on a deadline another chain already
  occupies (the case the bucketed timer wheel coalesces);
* **cancel/reschedule churn** — a fraction of events are cancelled
  before firing and rescheduled (slice-expiry invalidation);
* **cancel-heavy pollution** — a rolling population of far-future
  timers is continuously issued and torn down, so nearly every queued
  entry is a tombstone.  Without compaction the queue grows without
  bound and every drain pays for the dead weight; ``peak_queue`` in the
  report pins the fix (it stays near the live count).

The headline metric is ``events_per_s`` (events actually fired per wall
second, best of three rounds).  This is the number the CI perf-smoke job
gates on.  The engine class honors the process backend
(``repro.fastpath``): run with ``--backend fast`` / ``REPRO_BACKEND=fast``
to measure the accelerated core.
"""

from __future__ import annotations

from collections import deque

from common import bootstrap, repeat_best

bootstrap()

from repro.fastpath import make_engine  # noqa: E402

_CHAINS = 8  # concurrent tick chains, like 8 CPUs
_PERIODS = (100, 100, 100, 250, 250, 500, 700, 1000)  # deliberate collisions


def _queue_len(e) -> int:
    """Raw queue length including tombstones, for any engine class."""
    if hasattr(e, "queue_len"):
        return e.queue_len()
    return e._queued + (1 if getattr(e, "_head", None) else 0)


def _never() -> None:  # a decoy timer body that must not run
    raise AssertionError("cancelled decoy fired")


def _drive_cancel_heavy(n_events: int) -> tuple[int, int]:
    """Tick chains shadowed by a rolling window of cancelled timers."""
    e = make_engine()
    decoys: deque = deque()
    peak = 0

    def tick(chain: int) -> None:
        nonlocal peak
        e.schedule(_PERIODS[chain], tick, chain)
        # Two new long timers per event, tear down the oldest two: the
        # cancel-heavy steady state (connection timeouts, watchdogs).
        decoys.append(e.schedule(50_000_000, _never))
        decoys.append(e.schedule(60_000_000, _never))
        while len(decoys) > 64:
            decoys.popleft().cancel()
        if e.events_run % 256 == 0:
            q = _queue_len(e)
            if q > peak:
                peak = q

    for chain in range(_CHAINS):
        e.schedule(_PERIODS[chain], tick, chain)
    e.run(max_events=n_events + 1, stop_when=lambda: e.events_run >= n_events)
    for h in decoys:
        h.cancel()
    return e.events_run, peak


def _drive(n_events: int) -> int:
    e = make_engine()

    def tick(chain: int) -> None:
        # Reschedule self; every 16th firing also cancels and re-issues
        # (the slice-expiry pattern).
        h = e.schedule(_PERIODS[chain], tick, chain)
        if e.events_run % 16 == 0:
            h.cancel()
            e.schedule(_PERIODS[chain], tick, chain)

    for chain in range(_CHAINS):
        e.schedule(_PERIODS[chain], tick, chain)
    e.run(max_events=n_events + 1, stop_when=lambda: e.events_run >= n_events)
    assert e.events_run >= n_events
    return e.events_run


def run(quick: bool = False) -> dict:
    n = 100_000 if quick else 600_000
    wall, fired = repeat_best(lambda: _drive(n))
    ch_n = n // 4  # each event also issues 2 timers + 2 cancels
    ch_wall, (ch_fired, ch_peak) = repeat_best(
        lambda: _drive_cancel_heavy(ch_n))
    return {
        "events": fired,
        "wall_s": round(wall, 6),
        "events_per_s": round(fired / wall, 1),
        "cancel_heavy": {
            "events": ch_fired,
            "wall_s": round(ch_wall, 6),
            "events_per_s": round(ch_fired / ch_wall, 1),
            "peak_queue": ch_peak,
        },
    }


if __name__ == "__main__":
    print(run(quick=True))
