"""Engine throughput microbenchmark.

Drives the discrete-event engine with the event mix the simulator
produces in practice:

* **tick chains** — per-CPU events that fire and immediately reschedule
  a successor, frequently landing on a deadline another chain already
  occupies (the case the bucketed timer wheel coalesces);
* **cancel/reschedule churn** — a fraction of events are cancelled
  before firing and rescheduled (slice-expiry invalidation).

The headline metric is ``events_per_s`` (events actually fired per wall
second, best of three rounds).  This is the number the CI perf-smoke job
gates on.
"""

from __future__ import annotations

from common import bootstrap, repeat_best

bootstrap()

from repro.sim.engine import Engine  # noqa: E402

_CHAINS = 8  # concurrent tick chains, like 8 CPUs
_PERIODS = (100, 100, 100, 250, 250, 500, 700, 1000)  # deliberate collisions


def _drive(n_events: int) -> int:
    e = Engine()
    cancelled_then_rescheduled = 0

    def tick(chain: int) -> None:
        # Reschedule self; every 16th firing also cancels and re-issues
        # (the slice-expiry pattern).
        h = e.schedule(_PERIODS[chain], tick, chain)
        if e.events_run % 16 == 0:
            h.cancel()
            e.schedule(_PERIODS[chain], tick, chain)

    for chain in range(_CHAINS):
        e.schedule(_PERIODS[chain], tick, chain)
    e.run(max_events=n_events + 1, stop_when=lambda: e.events_run >= n_events)
    assert e.events_run >= n_events
    return e.events_run


def run(quick: bool = False) -> dict:
    n = 100_000 if quick else 600_000
    wall, fired = repeat_best(lambda: _drive(n))
    return {
        "events": fired,
        "wall_s": round(wall, 6),
        "events_per_s": round(fired / wall, 1),
    }


if __name__ == "__main__":
    print(run(quick=True))
