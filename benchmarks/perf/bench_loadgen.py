"""Load-generator arrival-throughput microbenchmark.

Measures how fast the open-loop client machinery can generate arrivals
— the loadgen overhead every serving scenario pays per request, with a
trivial submit so the scheduler stays out of the way.  Two variants:

* ``constant``: homogeneous Poisson (the single-draw fast path);
* ``burst``: a 3x square-wave :class:`RateSchedule` sampled via
  Lewis-Shedler thinning (draws a candidate gap *and* an acceptance
  uniform per arrival, so it is the expensive path).

Metric: ``arrivals_per_s`` of wall time for each variant (best of three
rounds), plus the thinning path's slowdown relative to the fast path.
"""

from __future__ import annotations

from common import bootstrap, repeat_best

bootstrap()

from repro.config import vanilla_config  # noqa: E402
from repro.kernel.kernel import Kernel  # noqa: E402
from repro.workloads.loadgen import (  # noqa: E402
    OpenLoopClients,
    RateSchedule,
)

MS = 1_000_000
_RATE = 200_000.0  # arrivals per simulated second


def _generate(rate, horizon_ns: int) -> int:
    kernel = Kernel(vanilla_config(cores=1, seed=2021))
    clients = OpenLoopClients(kernel, lambda req: None, rate_per_sec=rate)
    clients.start()
    kernel.run_for(horizon_ns)
    clients.stop()
    kernel.shutdown()
    return clients.sent


def run(quick: bool = False) -> dict:
    horizon = (100 if quick else 500) * MS
    burst = RateSchedule.burst(_RATE, 3.0, period_ns=10 * MS, duty=0.2)
    wall_c, sent_c = repeat_best(lambda: _generate(_RATE, horizon))
    wall_b, sent_b = repeat_best(lambda: _generate(burst, horizon))
    const_rate = sent_c / wall_c
    burst_rate = sent_b / wall_b
    return {
        "arrivals_constant": sent_c,
        "arrivals_burst": sent_b,
        "wall_constant_s": round(wall_c, 6),
        "wall_burst_s": round(wall_b, 6),
        "arrivals_per_s_constant": round(const_rate, 1),
        "arrivals_per_s_burst": round(burst_rate, 1),
        "thinning_slowdown": round(const_rate / burst_rate, 3),
    }


if __name__ == "__main__":
    print(run(quick=True))
