"""Shared helpers for the perf microbenchmark suite.

Each ``bench_*`` module exposes ``run(quick: bool) -> dict`` returning a
flat JSON-able metrics dict.  ``repeat_best`` runs a timed closure a few
times and keeps the best (minimum-wall) round — the standard way to damp
scheduler noise on a shared machine without long runs.
"""

from __future__ import annotations

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.abspath(os.path.join(_HERE, "..", ".."))
_SRC = os.path.join(REPO_ROOT, "src")


def bootstrap() -> None:
    """Make ``repro`` importable when invoked as a plain script."""
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)


def repeat_best(fn, rounds: int = 3) -> tuple[float, object]:
    """Run ``fn()`` ``rounds`` times; return (best wall seconds, last
    return value).  ``fn`` must be idempotent."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
    return best, value
