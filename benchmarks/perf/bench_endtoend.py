"""End-to-end report-section benchmarks with determinism digests.

Runs two quick report sections through the real spec pipeline
(``build_all_specs`` -> ``ParallelRunner(jobs=1, use_cache=False)``):

* ``fig02`` — the direct-cost microbenchmark sweep (17 specs, futex and
  context-switch heavy);
* a ``fig09`` NPB subset (streamcluster + is, 6 specs: barrier and
  condvar heavy).

Each section reports its wall time *and* the SHA-256 digest of the
canonical result JSON.  The digest proves the optimized core is
bit-identical run-to-run and machine-to-machine for the fixed seed; the
CI perf-smoke job hard-fails on any digest change.
"""

from __future__ import annotations

import hashlib
import json
import time

from common import bootstrap

bootstrap()

from repro.runners.full_report import ReportParams, build_all_specs  # noqa: E402
from repro.runners.parallel import ParallelRunner  # noqa: E402

_PARAMS = ReportParams(scale=0.3, quick=True, seed=2021)
_SECTIONS = {
    "fig02_quick": ("fig02/",),
    "fig09_npb_quick": ("fig09/streamcluster/", "fig09/is/"),
}


def _specs(prefixes):
    out = []
    for _section, specs in build_all_specs(_PARAMS):
        out.extend(s for s in specs if s.id.startswith(prefixes))
    return out


def _digest(specs, results) -> str:
    blob = json.dumps(
        [{"id": s.id, "result": r} for s, r in zip(specs, results)],
        sort_keys=True, separators=(",", ":"), allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run(quick: bool = False) -> dict:
    del quick  # the sections are already quick-mode; one size only
    out: dict = {}
    for name, prefixes in _SECTIONS.items():
        specs = _specs(prefixes)
        t0 = time.perf_counter()
        results = ParallelRunner(jobs=1, use_cache=False).run(specs)
        wall = time.perf_counter() - t0
        out[name] = {
            "specs": len(specs),
            "wall_s": round(wall, 6),
            "digest": _digest(specs, results),
        }
    return out


if __name__ == "__main__":
    print(json.dumps(run(), indent=2))
