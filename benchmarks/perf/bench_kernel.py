"""Kernel tick/dispatch microbenchmark.

Runs a full simulated kernel under a deliberately scheduler-heavy load:
4x oversubscribed compute+yield tasks on 8 cores, so nearly every engine
event is a dispatch, slice expiry, or yield — the kernel's hot loop with
no workload logic in the way.

Metric: ``events_per_s`` (engine events processed per wall second, best
of three rounds), plus the simulated-ns-per-wall-second ratio.
"""

from __future__ import annotations

from common import bootstrap, repeat_best

bootstrap()

from repro.config import vanilla_config  # noqa: E402
from repro.kernel.kernel import Kernel  # noqa: E402
from repro.prog import actions as A  # noqa: E402

_CORES = 8
_TASKS = 32
_COMPUTE_NS = 20_000  # short bursts -> high event rate


def _program(iters: int):
    for _ in range(iters):
        yield A.Compute(_COMPUTE_NS)
        yield A.Yield()


def _simulate(iters_per_task: int):
    kernel = Kernel(vanilla_config(cores=_CORES, seed=2021))
    for i in range(_TASKS):
        kernel.spawn(_program(iters_per_task), name=f"spin{i}")
    kernel.run_to_completion()
    return kernel.engine.events_run, kernel.engine.now


def run(quick: bool = False) -> dict:
    iters = 300 if quick else 1_500
    wall, (events, sim_ns) = repeat_best(lambda: _simulate(iters))
    return {
        "events": events,
        "sim_ns": sim_ns,
        "wall_s": round(wall, 6),
        "events_per_s": round(events / wall, 1),
        "sim_ns_per_wall_s": round(sim_ns / wall, 1),
    }


if __name__ == "__main__":
    print(run(quick=True))
